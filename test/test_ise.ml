module B = Ir.Dfg.Builder

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let default_cons = Isa.Hw_model.default_constraints

(* ------------------------------------------------------------------ *)
(* Enumeration                                                        *)
(* ------------------------------------------------------------------ *)

let prop_enumerated_all_legal =
  QCheck.Test.make ~name:"every enumerated candidate is legal" ~count:100
    Test_helpers.arb_small_dfg
    (fun dfg ->
      Ise.Enumerate.connected dfg
      |> List.for_all (fun ci ->
             Isa.Custom_inst.feasible dfg ci.Isa.Custom_inst.nodes
             && Isa.Custom_inst.gain ci > 0
             && Ir.Dfg.is_connected dfg ci.Isa.Custom_inst.nodes))

let prop_enumerated_distinct =
  QCheck.Test.make ~name:"enumeration never emits duplicates" ~count:100
    Test_helpers.arb_small_dfg
    (fun dfg ->
      let keys =
        Ise.Enumerate.connected dfg
        |> List.map (fun ci -> Util.Bitset.elements ci.Isa.Custom_inst.nodes)
      in
      List.length keys = List.length (List.sort_uniq compare keys))

let prop_enumeration_respects_allowed =
  QCheck.Test.make ~name:"candidates stay inside the allowed set" ~count:100
    Test_helpers.arb_dfg_with_set
    (fun (dfg, allowed) ->
      Ise.Enumerate.connected ~allowed dfg
      |> List.for_all (fun ci ->
             Util.Bitset.subset ci.Isa.Custom_inst.nodes allowed))

let test_enumeration_finds_mac_chain () =
  (* mul -> add -> add chain: the 3-op pattern must be found. *)
  let b = B.create () in
  let m = B.add b Ir.Op.Mul in
  let a1 = B.add_with b Ir.Op.Add [ m ] in
  let a2 = B.add_with b Ir.Op.Add [ a1 ] in
  ignore (B.add_with b Ir.Op.Store [ a2 ]);
  let dfg = B.finish b in
  let cands = Ise.Enumerate.connected dfg in
  check bool "3-op candidate found" true
    (List.exists (fun ci -> ci.Isa.Custom_inst.size = 3) cands)

let test_enumeration_budget_caps () =
  let dfg = (Kernels.find "sha" |> Ir.Cfg.blocks |> List.hd).Ir.Cfg.body in
  let tight = { Ise.Enumerate.max_size = 4; max_explored = 500; max_candidates = 50 } in
  let cands = Ise.Enumerate.connected ~budget:tight dfg in
  check bool "cap respected" true (List.length cands <= 50);
  check bool "sizes capped" true
    (List.for_all (fun ci -> ci.Isa.Custom_inst.size <= 4) cands)

let test_miso_single_output () =
  let prng = Util.Prng.create 33 in
  let dfg = Kernels.Blockgen.block prng ~size:40 Kernels.Blockgen.dsp_mix in
  let misos = Ise.Enumerate.max_miso dfg in
  check bool "at least one MISO" true (misos <> []);
  List.iter
    (fun ci ->
      check int "single output" 1 ci.Isa.Custom_inst.outputs;
      check bool "inputs within ports" true
        (ci.Isa.Custom_inst.inputs <= default_cons.Isa.Hw_model.max_inputs))
    misos

let test_best_single_cut () =
  let b = B.create () in
  let m = B.add b Ir.Op.Mul in
  let a1 = B.add_with b Ir.Op.Add [ m ] in
  ignore (B.add_with b Ir.Op.Store [ a1 ]);
  let dfg = B.finish b in
  let n = Ir.Dfg.node_count dfg in
  let allowed = Util.Bitset.of_list n (Ir.Dfg.nodes dfg) in
  match Ise.Enumerate.best_single_cut ~allowed dfg with
  | Some best ->
    (* mul+add saves 1 cycle, single ops save 0; best is the pair. *)
    check int "best is the MAC" 2 best.Isa.Custom_inst.size
  | None -> Alcotest.fail "expected a cut"

(* ------------------------------------------------------------------ *)
(* Selection                                                          *)
(* ------------------------------------------------------------------ *)

let candidates_of_kernel_block name =
  let cfg = Kernels.find name in
  let blocks = Ir.Cfg.blocks cfg in
  let big =
    List.fold_left
      (fun acc b -> if Ir.Dfg.node_count b.Ir.Cfg.body > Ir.Dfg.node_count acc.Ir.Cfg.body then b else acc)
      (List.hd blocks) blocks
  in
  Ise.Select.candidates_of_block ~budget:Ise.Enumerate.small_budget ~block:0
    ~freq:10. big.Ir.Cfg.body

let prop_greedy_within_budget =
  QCheck.Test.make ~name:"greedy selection stays within budget" ~count:50
    QCheck.(int_range 0 500)
    (fun budget ->
      let cands = candidates_of_kernel_block "lms" in
      let sel = Ise.Select.greedy ~budget cands in
      Ise.Select.selection_valid ~budget sel)

let prop_bnb_within_budget_and_beats_greedy =
  QCheck.Test.make ~name:"branch-and-bound valid and >= greedy" ~count:20
    QCheck.(int_range 0 400)
    (fun budget ->
      let cands = candidates_of_kernel_block "edn" in
      let top =
        List.sort
          (fun a b -> compare (Ise.Select.total_gain b) (Ise.Select.total_gain a))
          cands
        |> List.filteri (fun i _ -> i < 15)
      in
      let g = Ise.Select.greedy ~budget top in
      let b = Ise.Select.branch_and_bound ~budget top in
      Ise.Select.selection_valid ~budget b
      && Ise.Select.gain_of b +. 1e-9 >= Ise.Select.gain_of g)

let prop_bnb_exact_small =
  QCheck.Test.make ~name:"branch-and-bound is exact on small candidate sets"
    ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 50 400))
    (fun (seed, budget) ->
      let prng = Util.Prng.create seed in
      let dfg =
        Kernels.Blockgen.block prng ~loads:2 ~stores:1 ~size:25
          Kernels.Blockgen.crypto_mix
      in
      let cands =
        Ise.Select.candidates_of_block ~budget:Ise.Enumerate.small_budget
          ~block:0 ~freq:1. dfg
        |> List.sort (fun a b ->
               compare (Ise.Select.total_gain b) (Ise.Select.total_gain a))
        |> List.filteri (fun i _ -> i < 10)
      in
      let bnb = Ise.Select.branch_and_bound ~budget cands in
      (* brute force over all subsets of <= 10 candidates *)
      let arr = Array.of_list cands in
      let n = Array.length arr in
      let best = ref 0. in
      for mask = 0 to (1 lsl n) - 1 do
        let chosen = ref [] in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then chosen := arr.(i) :: !chosen
        done;
        if Ise.Select.selection_valid ~budget !chosen then
          best := Float.max !best (Ise.Select.gain_of !chosen)
      done;
      Float.abs (Ise.Select.gain_of bnb -. !best) < 1e-6)

let test_knapsack_exact () =
  (* hand-made disjoint candidates in distinct blocks *)
  let mk block gain_ops area_ops =
    let b = B.create () in
    for _ = 1 to gain_ops do ignore (B.add b Ir.Op.Add) done;
    ignore area_ops;
    let dfg = B.finish b in
    let nodes = Util.Bitset.of_list gain_ops (List.init gain_ops (fun i -> i)) in
    { Ise.Select.ci = Isa.Custom_inst.make_unchecked dfg nodes; block; freq = 1. }
  in
  (* areas: 10,20,30 deci-adders (1,2,3 adds) with gains 0,1,2 *)
  let c1 = mk 0 1 0 and c2 = mk 1 2 0 and c3 = mk 2 3 0 in
  let sel = Ise.Select.knapsack ~budget:30 [ c1; c2; c3 ] in
  (* best at 30 units: c3 alone (gain 2) or c1+c2 (gain 1): expect c3 *)
  check int "one candidate" 1 (List.length sel);
  check bool "picked the 3-add pattern" true
    (List.exists (fun c -> c.Ise.Select.ci.Isa.Custom_inst.size = 3) sel)

let test_knapsack_rejects_overlap () =
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add_with b Ir.Op.Add [ x ] in
  let dfg = B.finish b in
  let c1 =
    { Ise.Select.ci = Isa.Custom_inst.make dfg (Util.Bitset.of_list 2 [ x; y ]);
      block = 0; freq = 1. }
  in
  let c2 =
    { Ise.Select.ci = Isa.Custom_inst.make dfg (Util.Bitset.of_list 2 [ x ]);
      block = 0; freq = 1. }
  in
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Select.knapsack: candidates overlap")
    (fun () -> ignore (Ise.Select.knapsack ~budget:100 [ c1; c2 ]))

let prop_selection_no_conflicts =
  QCheck.Test.make ~name:"greedy never selects overlapping candidates" ~count:30
    QCheck.(int_range 50 1000)
    (fun budget ->
      let cands = candidates_of_kernel_block "ndes" in
      let sel = Ise.Select.greedy ~budget cands in
      Ise.Select.selection_valid ~budget sel)

(* ------------------------------------------------------------------ *)
(* Curve generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_curve_generation_lms () =
  let cfg = Kernels.find "lms" in
  let curve = Ise.Curve.generate ~params:Ise.Curve.small cfg in
  check bool "more than the software point" true (Isa.Config.size curve > 1);
  check bool "improves cycles" true
    (Isa.Config.min_cycles curve < Isa.Config.base_cycles curve);
  (* base cycles consistent with the profiled estimate *)
  check int "base cycles" (Ise.Curve.base_cycles cfg) (Isa.Config.base_cycles curve)

let test_curve_speedup_in_published_range () =
  (* Chapter 3 reports 3.5%..27% per-task gains; allow a wide margin. *)
  let cfg = Kernels.find "g721decode" in
  let curve = Ise.Curve.generate ~params:Ise.Curve.small cfg in
  let base = float_of_int (Isa.Config.base_cycles curve) in
  let best = float_of_int (Isa.Config.min_cycles curve) in
  let gain_pct = (base -. best) /. base *. 100. in
  check bool "gain between 1% and 50%" true (gain_pct > 1. && gain_pct < 50.)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ise"
    [ ( "enumeration",
        [ qt prop_enumerated_all_legal;
          qt prop_enumerated_distinct;
          qt prop_enumeration_respects_allowed;
          Alcotest.test_case "finds MAC chain" `Quick test_enumeration_finds_mac_chain;
          Alcotest.test_case "budget caps" `Quick test_enumeration_budget_caps;
          Alcotest.test_case "MISO single output" `Quick test_miso_single_output;
          Alcotest.test_case "best single cut" `Quick test_best_single_cut ] );
      ( "selection",
        [ qt prop_greedy_within_budget;
          qt prop_bnb_within_budget_and_beats_greedy;
          qt prop_bnb_exact_small;
          Alcotest.test_case "knapsack exact" `Quick test_knapsack_exact;
          Alcotest.test_case "knapsack rejects overlap" `Quick test_knapsack_rejects_overlap;
          qt prop_selection_no_conflicts ] );
      ( "curve",
        [ Alcotest.test_case "lms curve" `Quick test_curve_generation_lms;
          Alcotest.test_case "g721 speedup in range" `Quick test_curve_speedup_in_published_range ] ) ]
