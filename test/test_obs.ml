(* Observability tests: Prometheus text-format conformance (checked by
   parsing the exposition back with a line-format parser), flight-ring
   wraparound and cross-domain ordering, snapshot deltas under a pooled
   workload, the Telemetry/Histogram compatibility shims, and an
   in-process HTTP round-trip against the /metrics endpoint. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let eps = Alcotest.float 1e-9

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* ------------------- Prometheus line-format parser -------------------

   A deliberately strict reading of the v0.0.4 text format: comment
   lines are HELP/TYPE, sample lines are name + optional label set +
   float, with backslash/quote/newline escapes in label values.
   Anything else fails the test. *)

type line =
  | Help of string * string
  | Type of string * string
  | Sample of string * (string * string) list * float

let parse_value = function
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> Float.nan
  | s -> float_of_string s

let parse_labels s =
  let n = String.length s in
  let rec pairs i acc =
    if i >= n then List.rev acc
    else
      let j =
        match String.index_from_opt s i '=' with
        | Some j -> j
        | None -> Alcotest.failf "label without '=': %s" s
      in
      let key = String.sub s i (j - i) in
      if j + 1 >= n || s.[j + 1] <> '"' then
        Alcotest.failf "label value not quoted: %s" s;
      let b = Buffer.create 16 in
      let rec value k =
        if k >= n then Alcotest.failf "unterminated label value: %s" s
        else
          match s.[k] with
          | '\\' ->
            if k + 1 >= n then Alcotest.failf "dangling escape: %s" s;
            (match s.[k + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c -> Alcotest.failf "bad escape \\%c in %s" c s);
            value (k + 2)
          | '"' -> k + 1
          | c ->
            Buffer.add_char b c;
            value (k + 1)
      in
      let k = value (j + 2) in
      let acc = (key, Buffer.contents b) :: acc in
      if k >= n then List.rev acc
      else if s.[k] = ',' then pairs (k + 1) acc
      else Alcotest.failf "junk after label value: %s" s
  in
  pairs 0 []

let parse_line ln =
  let after prefix =
    String.sub ln (String.length prefix) (String.length ln - String.length prefix)
  in
  if ln = "" then None
  else if String.starts_with ~prefix:"# HELP " ln then begin
    let rest = after "# HELP " in
    let sp = String.index rest ' ' in
    Some
      (Help
         ( String.sub rest 0 sp,
           String.sub rest (sp + 1) (String.length rest - sp - 1) ))
  end
  else if String.starts_with ~prefix:"# TYPE " ln then begin
    let rest = after "# TYPE " in
    let sp = String.index rest ' ' in
    Some
      (Type
         ( String.sub rest 0 sp,
           String.sub rest (sp + 1) (String.length rest - sp - 1) ))
  end
  else if ln.[0] = '#' then None
  else
    (* [value] is a float, so the last '}' on the line closes the label
       set even when label values themselves contain braces. *)
    match String.index_opt ln '{' with
    | Some i ->
      let close = String.rindex ln '}' in
      let v =
        parse_value (String.trim (String.sub ln (close + 1) (String.length ln - close - 1)))
      in
      Some (Sample (String.sub ln 0 i, parse_labels (String.sub ln (i + 1) (close - i - 1)), v))
    | None ->
      let sp = String.index ln ' ' in
      Some
        (Sample
           ( String.sub ln 0 sp,
             [],
             parse_value (String.sub ln (sp + 1) (String.length ln - sp - 1)) ))

let parse_exposition text =
  List.filter_map parse_line (String.split_on_char '\n' text)

let sample lines name labels =
  let want = List.sort compare labels in
  List.find_map
    (function
      | Sample (n, ls, v) when n = name && List.sort compare ls = want ->
        Some v
      | _ -> None)
    lines

let typed lines name =
  List.find_map
    (function Type (n, k) when n = name -> Some k | _ -> None)
    lines

(* ----------------------------- Prometheus ---------------------------- *)

let weird_label = "qu\"ote\\back\nnewline"

let test_prometheus_roundtrip () =
  Obs.Metrics.reset ();
  check string "empty registry renders empty" "" (Obs.Prometheus.render ());
  Obs.Metrics.declare ~help:"ops by kind" Obs.Metrics.Counter "t.ops";
  Obs.Metrics.inc ~labels:[ ("op", "edf") ] ~by:3. "t.ops";
  Obs.Metrics.inc ~labels:[ ("op", weird_label) ] "t.ops";
  Obs.Metrics.set ~labels:[ ("shard", "0") ] "t.items" 7.;
  Obs.Metrics.declare ~help:"latency" ~unit_s:true Obs.Metrics.Hist "t.lat";
  Obs.Metrics.observe "t.lat" 0.001;
  Obs.Metrics.observe "t.lat" 0.4;
  Obs.Metrics.observe "t.lat" 3.0;
  Obs.Metrics.declare ~help:"declared, never sampled" Obs.Metrics.Gauge
    "t.silent";
  let text = Obs.Prometheus.render () in
  let lines = parse_exposition text in
  (* counter cells round-trip, including the escaped label value *)
  check (Alcotest.option eps) "labeled counter" (Some 3.)
    (sample lines "t_ops_total" [ ("op", "edf") ]);
  check (Alcotest.option eps) "escaped label round-trips" (Some 1.)
    (sample lines "t_ops_total" [ ("op", weird_label) ]);
  check (Alcotest.option eps) "gauge" (Some 7.)
    (sample lines "t_items" [ ("shard", "0") ]);
  (* histogram: _seconds unit suffix, exact ladder counts, +Inf = count *)
  check (Alcotest.option eps) "hist count" (Some 3.)
    (sample lines "t_lat_seconds_count" []);
  (match sample lines "t_lat_seconds_sum" [] with
  | Some s -> check eps "hist sum" 3.401 s
  | None -> Alcotest.fail "missing t_lat_seconds_sum");
  check (Alcotest.option eps) "le=2 bucket" (Some 2.)
    (sample lines "t_lat_seconds_bucket" [ ("le", "2") ]);
  check (Alcotest.option eps) "le=16 bucket" (Some 3.)
    (sample lines "t_lat_seconds_bucket" [ ("le", "16") ]);
  check (Alcotest.option eps) "+Inf bucket equals count" (Some 3.)
    (sample lines "t_lat_seconds_bucket" [ ("le", "+Inf") ]);
  (* cumulative bucket counts never decrease as le grows *)
  let buckets =
    List.filter_map
      (function
        | Sample ("t_lat_seconds_bucket", ls, v) ->
          Some (parse_value (List.assoc "le" ls), v)
        | _ -> None)
      lines
  in
  check int "full ladder plus +Inf"
    (List.length Obs.Prometheus.ladder_exponents + 1)
    (List.length buckets);
  ignore
    (List.fold_left
       (fun (ple, pv) (le, v) ->
         check bool "ladder sorted" true (le > ple);
         check bool "cumulative monotone" true (v >= pv);
         (le, v))
       (neg_infinity, 0.) buckets);
  (* every family, including declared-but-unsampled ones, is typed *)
  check (Alcotest.option string) "counter TYPE" (Some "counter")
    (typed lines "t_ops_total");
  check (Alcotest.option string) "gauge TYPE" (Some "gauge")
    (typed lines "t_items");
  check (Alcotest.option string) "histogram TYPE" (Some "histogram")
    (typed lines "t_lat_seconds");
  check (Alcotest.option string) "unsampled family still typed"
    (Some "gauge") (typed lines "t_silent");
  check bool "HELP emitted" true
    (List.exists (function Help ("t_ops_total", _) -> true | _ -> false) lines);
  (* conformance: every sample belongs to a typed family *)
  let strip name =
    List.fold_left
      (fun n suf ->
        if String.ends_with ~suffix:suf n then
          String.sub n 0 (String.length n - String.length suf)
        else n)
      name
      [ "_bucket"; "_sum"; "_count" ]
  in
  List.iter
    (function
      | Sample (n, _, _) ->
        if typed lines n = None && typed lines (strip n) = None then
          Alcotest.failf "sample %s has no TYPE line" n
      | _ -> ())
    lines

let test_prometheus_name_sanitization () =
  check string "dots to underscores" "cache_hits"
    (Obs.Prometheus.sanitize_name "cache.hits");
  check string "leading digit guarded" "_2nd"
    (Obs.Prometheus.sanitize_name "2nd");
  check string "escape backslash quote newline" "a\\\\b\\\"c\\nd"
    (Obs.Prometheus.escape_label_value "a\\b\"c\nd");
  check string "integer values unpadded" "42"
    (Obs.Prometheus.format_value 42.);
  check string "infinity spelled +Inf" "+Inf"
    (Obs.Prometheus.format_value infinity)

(* --------------------------- Flight recorder -------------------------- *)

let test_flight_wraparound () =
  Obs.Flight.set_capacity 8;
  for i = 1 to 20 do
    Obs.Flight.record "t.wrap" [ ("i", string_of_int i) ]
  done;
  let evs = Obs.Flight.events () in
  check int "ring retains capacity" 8 (List.length evs);
  let is =
    List.map
      (fun e -> int_of_string (List.assoc "i" e.Obs.Flight.fields))
      evs
  in
  check (Alcotest.list int) "last 8 events, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] is;
  ignore
    (List.fold_left
       (fun prev e ->
         check bool "seq strictly ascending" true (e.Obs.Flight.seq > prev);
         e.Obs.Flight.seq)
       (-1) evs);
  Obs.Flight.set_capacity 1024

let test_flight_multidomain_order () =
  Obs.Flight.set_capacity 1024;
  let workers = 4 and per = 50 in
  let doms =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Obs.Flight.record "t.md"
                [ ("w", string_of_int w); ("i", string_of_int i) ]
            done))
  in
  List.iter Domain.join doms;
  let evs = Obs.Flight.events () in
  check int "all events retained" (workers * per) (List.length evs);
  ignore
    (List.fold_left
       (fun prev e ->
         check bool "one global order" true (e.Obs.Flight.seq > prev);
         e.Obs.Flight.seq)
       (-1) evs);
  (* interleaving is arbitrary, but each domain's events keep their
     program order in the global sequence *)
  List.iter
    (fun w ->
      let is =
        List.filter_map
          (fun e ->
            if List.assoc "w" e.Obs.Flight.fields = string_of_int w then
              Some (int_of_string (List.assoc "i" e.Obs.Flight.fields))
            else None)
          evs
      in
      check (Alcotest.list int)
        (Printf.sprintf "domain %d program order" w)
        (List.init per Fun.id) is)
    (List.init workers Fun.id);
  Obs.Flight.clear ()

let test_flight_write_and_severity () =
  Obs.Flight.clear ();
  check string "clear resets high-water" "info"
    (Obs.Flight.severity_string (Obs.Flight.worst_severity ()));
  Obs.Flight.record "t.quiet" [];
  Obs.Flight.record ~severity:Obs.Flight.Warn "t.write" [ ("x", "1") ];
  check string "warn is sticky" "warn"
    (Obs.Flight.severity_string (Obs.Flight.worst_severity ()));
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "obs-flight-test-%d.jsonl" (Unix.getpid ()))
  in
  Obs.Flight.write path;
  let ic = open_in path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  let jlines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
  check int "one JSONL line per event" 2 (List.length jlines);
  check bool "event kind serialized" true (contains body "t.write");
  check bool "severity serialized" true (contains body "warn");
  check bool "field serialized" true (contains body "\"x\"");
  Obs.Flight.clear ()

(* ------------------------------ Snapshot ------------------------------ *)

let test_snapshot_delta_pooled () =
  Obs.Metrics.set ~labels:[ ("which", "lvl") ] "t.level" 5.;
  let s0 = Obs.Snapshot.take () in
  let n = 200 in
  Engine.Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Engine.Parallel.Pool.map pool
           (fun i ->
             Obs.Metrics.inc
               ~labels:[ ("w", string_of_int (i mod 3)) ]
               "t.pooled";
             Obs.Metrics.observe "t.pooled_lat"
               (0.001 *. float_of_int (1 + (i mod 10)));
             Obs.Metrics.set ~labels:[ ("which", "lvl") ] "t.level"
               (float_of_int i);
             i)
           (List.init n Fun.id)));
  Obs.Metrics.set ~labels:[ ("which", "lvl") ] "t.level" 9.;
  let s1 = Obs.Snapshot.take () in
  let d = Obs.Snapshot.delta ~before:s0 ~after:s1 in
  (* the delta of every counter family equals the sequential difference
     of the two snapshots — pool counters included *)
  List.iter
    (fun (f : Obs.Metrics.family) ->
      if f.Obs.Metrics.fam_kind = Obs.Metrics.Counter then
        let name = f.Obs.Metrics.fam_name in
        check eps
          (Printf.sprintf "%s delta = after - before" name)
          (Obs.Snapshot.counter s1 name -. Obs.Snapshot.counter s0 name)
          (Obs.Snapshot.counter d name))
    (Obs.Snapshot.families d);
  check eps "exactly one inc per item" (float_of_int n)
    (Obs.Snapshot.counter d "t.pooled");
  check eps "per-cell delta" 67.
    (Obs.Snapshot.counter ~labels:[ ("w", "0") ] d "t.pooled");
  check eps "pool processed every item" (float_of_int n)
    (Obs.Snapshot.counter d "pool.items"
    -. Obs.Snapshot.counter d "pool.steals" *. 0.);
  (match Obs.Snapshot.hist_stats d "t.pooled_lat" with
  | None -> Alcotest.fail "histogram delta missing"
  | Some (h : Obs.Metrics.hstats) ->
    check int "histogram count delta" n h.Obs.Metrics.count;
    (match
       ( Obs.Snapshot.hist_data s1 "t.pooled_lat",
         Obs.Snapshot.hist_data s0 "t.pooled_lat" )
     with
    | Some a, Some b ->
      check eps "histogram sum delta is sequential diff"
        (a.Obs.Metrics.hsum -. b.Obs.Metrics.hsum)
        h.Obs.Metrics.sum
    | Some a, None -> check eps "histogram sum delta" a.Obs.Metrics.hsum h.Obs.Metrics.sum
    | None, _ -> Alcotest.fail "after snapshot missing histogram"));
  (* gauges are levels: the delta reports the after value *)
  check eps "gauge keeps after level" 9.
    (Obs.Snapshot.gauge ~labels:[ ("which", "lvl") ] d "t.level")

let test_snapshot_json_shapes () =
  let s0 = Obs.Snapshot.take () in
  Obs.Metrics.inc ~by:4. "t.json_counter";
  Obs.Metrics.inc_s "t.json_timer" 0.125;
  Obs.Metrics.observe "t.json_hist" 0.25;
  let d = Obs.Snapshot.delta ~before:s0 ~after:(Obs.Snapshot.take ()) in
  let tj = Obs.Snapshot.telemetry_json d in
  check bool "counters half" true (contains tj "\"counters\"");
  check bool "timers half" true (contains tj "\"timers\"");
  check bool "counter value" true (contains tj "\"t.json_counter\": 4");
  check bool "timer value" true (contains tj "\"t.json_timer\": 0.125");
  let hj = Obs.Snapshot.histograms_json d in
  check bool "histogram entry" true (contains hj "\"t.json_hist\"");
  check bool "histogram stats fields" true (contains hj "\"p99\"")

(* ------------------------- Telemetry interop -------------------------- *)

let test_telemetry_shim_interop () =
  Obs.Metrics.inc ~labels:[ ("k", "a") ] ~by:2. "t.interop";
  Obs.Metrics.inc ~labels:[ ("k", "b") ] ~by:5. "t.interop";
  check int "legacy read sums label cells" 7
    (Engine.Telemetry.counter "t.interop");
  Engine.Telemetry.incr "t.interop2";
  check (Alcotest.option eps) "legacy write lands in registry" (Some 1.)
    (Obs.Metrics.value "t.interop2");
  Engine.Histogram.observe "t.interop_h" 0.25;
  (match Obs.Metrics.hist_stats "t.interop_h" with
  | None -> Alcotest.fail "legacy histogram write missing from registry"
  | Some h -> check int "one sample" 1 h.Obs.Metrics.count)

(* ------------------------------- Serve -------------------------------- *)

let test_serve_roundtrip () =
  let srv = Obs.Serve.start ~port:0 () in
  let port =
    match Obs.Serve.port srv with
    | Some p -> p
    | None -> Alcotest.fail "no bound port"
  in
  let get path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
            path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let b = Buffer.create 4096 in
        let buf = Bytes.create 4096 in
        let rec drain () =
          let k = Unix.read fd buf 0 (Bytes.length buf) in
          if k > 0 then begin
            Buffer.add_subbytes b buf 0 k;
            drain ()
          end
        in
        (try drain () with Unix.Unix_error _ -> ());
        Buffer.contents b)
  in
  Obs.Metrics.inc ~labels:[ ("op", "probe") ] "t.serve";
  let h = get "/healthz" in
  check bool "healthz 200" true (String.starts_with ~prefix:"HTTP/1.1 200" h);
  check bool "healthz body" true (contains h "ok");
  let m = get "/metrics" in
  check bool "metrics 200" true (String.starts_with ~prefix:"HTTP/1.1 200" m);
  check bool "prometheus content type" true (contains m "version=0.0.4");
  check bool "live family served" true
    (contains m "t_serve_total{op=\"probe\"} 1");
  let nf = get "/nope" in
  check bool "unknown path 404" true
    (String.starts_with ~prefix:"HTTP/1.1 404" nf);
  Obs.Serve.stop srv;
  Obs.Serve.stop srv (* idempotent *)

let () =
  Alcotest.run "obs"
    [ ( "prometheus",
        [ Alcotest.test_case "exposition round-trip" `Quick
            test_prometheus_roundtrip;
          Alcotest.test_case "name and value formatting" `Quick
            test_prometheus_name_sanitization ] );
      ( "flight",
        [ Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "multi-domain ordering" `Quick
            test_flight_multidomain_order;
          Alcotest.test_case "write and severity" `Quick
            test_flight_write_and_severity ] );
      ( "snapshot",
        [ Alcotest.test_case "delta under pooled workload" `Quick
            test_snapshot_delta_pooled;
          Alcotest.test_case "json shapes" `Quick test_snapshot_json_shapes ] );
      ( "interop",
        [ Alcotest.test_case "telemetry and histogram shims" `Quick
            test_telemetry_shim_interop ] );
      ( "serve",
        [ Alcotest.test_case "http round-trip" `Quick test_serve_roundtrip ] )
    ]
