(* ISEGEN iterative candidate generation and the pluggable hardware
   cost backends: legality, determinism, anytime behaviour, the
   auto-dispatch switch, and the cap-breaking claim (on a block where
   exhaustive enumeration saturates, the iterative generator finds a
   strictly better candidate). *)

module B = Ir.Dfg.Builder
module Bitset = Util.Bitset

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let cons = Isa.Hw_model.default_constraints

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let ci_sig (ci : Isa.Custom_inst.t) =
  (Bitset.elements ci.Isa.Custom_inst.nodes, Isa.Custom_inst.gain ci, ci.area)

let legal dfg (ci : Isa.Custom_inst.t) =
  Isa.Custom_inst.feasible ~constraints:cons dfg ci.Isa.Custom_inst.nodes
  && Isa.Custom_inst.gain ci > 0
  && Ir.Dfg.is_connected dfg ci.Isa.Custom_inst.nodes

(* A diamond of multiplies: a feeds b and c, both feed d.  {a,b,d} is
   connected but not convex (the a->c->d path escapes), so finding the
   whole diamond exercises the hull repair on every grow move. *)
let diamond () =
  let b = B.create () in
  let a = B.add b Ir.Op.Mul in
  let l = B.add_with b Ir.Op.Mul [ a ] in
  let r = B.add_with b Ir.Op.Mul [ a ] in
  let d = B.add_with b Ir.Op.Add [ l; r ] in
  ignore (B.add_with b Ir.Op.Store [ d ]);
  (B.finish b, [ a; l; r; d ])

let big_block seed size =
  Kernels.Blockgen.block (Util.Prng.create seed) ~size Kernels.Blockgen.dsp_mix

let biggest_block name =
  let blocks = Ir.Cfg.blocks (Kernels.find name) in
  (List.fold_left
     (fun acc (b : Ir.Cfg.block) ->
       if Ir.Dfg.node_count b.Ir.Cfg.body > Ir.Dfg.node_count acc.Ir.Cfg.body
       then b
       else acc)
     (List.hd blocks) blocks)
    .Ir.Cfg.body

let best_gain = function
  | [] -> 0
  | cis ->
    List.fold_left (fun acc ci -> max acc (Isa.Custom_inst.gain ci)) 0 cis

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

let test_diamond_optimum () =
  let dfg, nodes = diamond () in
  let cands = Ise.Isegen.generate dfg in
  check bool "candidates found" true (cands <> []);
  let full = Bitset.of_list (Ir.Dfg.node_count dfg) nodes in
  check bool "whole diamond found (hull repair)" true
    (List.exists
       (fun (ci : Isa.Custom_inst.t) -> Bitset.equal ci.nodes full)
       cands);
  (* the sorted head matches the exhaustive oracle's best gain *)
  let oracle = best_gain (Ise.Enumerate.connected dfg) in
  check int "head gain equals oracle best" oracle
    (best_gain [ List.hd cands ])

let prop_isegen_all_legal =
  QCheck.Test.make ~name:"every isegen candidate is legal" ~count:80
    Test_helpers.arb_small_dfg
    (fun dfg -> List.for_all (legal dfg) (Ise.Isegen.generate dfg))

let prop_isegen_respects_allowed =
  QCheck.Test.make ~name:"isegen stays inside the allowed set" ~count:80
    Test_helpers.arb_dfg_with_set
    (fun (dfg, allowed) ->
      Ise.Isegen.generate ~allowed dfg
      |> List.for_all (fun (ci : Isa.Custom_inst.t) ->
             Bitset.subset ci.nodes allowed))

let prop_isegen_distinct =
  QCheck.Test.make ~name:"isegen never emits duplicates" ~count:80
    Test_helpers.arb_small_dfg
    (fun dfg ->
      let keys =
        Ise.Isegen.generate dfg
        |> List.map (fun (ci : Isa.Custom_inst.t) -> Bitset.elements ci.nodes)
      in
      List.length keys = List.length (List.sort_uniq compare keys))

let test_same_seed_deterministic () =
  let dfg = big_block 7 48 in
  let params = { Ise.Isegen.default_params with Ise.Isegen.seed = 11 } in
  let a = Ise.Isegen.generate ~params dfg in
  let b = Ise.Isegen.generate ~params dfg in
  check bool "same seed, same pool" true
    (List.map ci_sig a = List.map ci_sig b)

let test_distinct_seeds_diverge () =
  (* more seeds than restarts, so the PRNG picks the starting nodes and
     distinct seeds walk different parts of the block *)
  let dfg = big_block 7 60 in
  let params seed =
    { Ise.Isegen.default_params with Ise.Isegen.seed; restarts = 4 }
  in
  let runs =
    List.map
      (fun s -> List.map ci_sig (Ise.Isegen.generate ~params:(params s) dfg))
      [ 1; 2; 3; 4; 5 ]
  in
  let distinct = List.length (List.sort_uniq compare runs) in
  check bool "at least two of five seeds differ" true (distinct > 1)

let test_best_cut_is_head () =
  let dfg = biggest_block "sha" in
  let n = Ir.Dfg.node_count dfg in
  let allowed = Bitset.of_list n (Ir.Dfg.nodes dfg) in
  let params = { Ise.Isegen.default_params with Ise.Isegen.restarts = 8 } in
  match (Ise.Isegen.best_cut ~params ~allowed dfg,
         Ise.Isegen.generate ~params ~allowed dfg) with
  | Some best, hd :: _ -> check bool "best_cut = head" true (ci_sig best = ci_sig hd)
  | None, [] -> ()
  | _ -> Alcotest.fail "best_cut and generate disagree about emptiness"

(* ------------------------------------------------------------------ *)
(* Guard (anytime)                                                    *)
(* ------------------------------------------------------------------ *)

let test_guard_anytime_cut () =
  let dfg = biggest_block "sha" in
  let params = { Ise.Isegen.default_params with Ise.Isegen.restarts = 8 } in
  let full = Ise.Isegen.generate ~params dfg in
  let guard = Engine.Guard.create ~fuel:25 () in
  let partial = Ise.Isegen.generate ~guard ~params dfg in
  (match Engine.Guard.status guard with
   | Engine.Guard.Partial _ -> ()
   | Engine.Guard.Exact -> Alcotest.fail "25 fuel units never exhausted");
  check bool "anytime pool is legal" true (List.for_all (legal dfg) partial);
  let full_keys =
    List.map (fun (ci : Isa.Custom_inst.t) -> Bitset.elements ci.nodes) full
  in
  check bool "anytime pool is a subset of the full pool" true
    (List.for_all
       (fun (ci : Isa.Custom_inst.t) ->
         List.mem (Bitset.elements ci.nodes) full_keys)
       partial);
  check bool "truncated run found less or equal" true
    (List.length partial <= List.length full)

(* ------------------------------------------------------------------ *)
(* Cap saturation + auto dispatch                                     *)
(* ------------------------------------------------------------------ *)

let tight = { Ise.Enumerate.max_size = 4; max_explored = 500; max_candidates = 50 }

let test_cap_saturation_counter () =
  let dfg = biggest_block "sha" in
  let before = Engine.Telemetry.counter "enumerate.cap_saturated" in
  let cands, saturation = Ise.Enumerate.connected_full ~budget:tight dfg in
  (match saturation with
   | Some sat ->
     check bool "reason is a stable label" true
       (List.mem
          (Ise.Enumerate.saturation_reason sat)
          [ "max_candidates"; "max_explored" ])
   | None -> Alcotest.fail "tight budget on sha's biggest block must saturate");
  check bool "candidates still returned" true (cands <> []);
  check bool "telemetry counter fired" true
    (Engine.Telemetry.counter "enumerate.cap_saturated" > before)

let test_isegen_breaks_the_cap () =
  (* On a block where the tight exhaustive budget saturates, the
     iterative generator must find a strictly better candidate. *)
  let dfg = biggest_block "sha" in
  let capped, saturation = Ise.Enumerate.connected_full ~budget:tight dfg in
  check bool "exhaustive saturated" true (saturation <> None);
  let isegen = Ise.Isegen.generate dfg in
  check bool "isegen strictly beats the saturated enumeration" true
    (best_gain isegen > best_gain capped)

let test_auto_switches () =
  let dfg = biggest_block "sha" in
  let before = Engine.Telemetry.counter "isegen.auto_switches" in
  let auto =
    Ise.Select.generate_candidates ~budget:tight ~generator:Ise.Isegen.Auto dfg
  in
  let isegen = Ise.Isegen.generate dfg in
  check bool "auto used the isegen pool" true
    (List.map ci_sig auto = List.map ci_sig isegen);
  check bool "switch counted" true
    (Engine.Telemetry.counter "isegen.auto_switches" > before)

let test_auto_stays_exhaustive () =
  let dfg, _ = diamond () in
  let auto = Ise.Select.generate_candidates ~generator:Ise.Isegen.Auto dfg in
  let exhaustive = Ise.Enumerate.connected dfg in
  check bool "auto equals exhaustive below the caps" true
    (List.map ci_sig auto = List.map ci_sig exhaustive)

(* ------------------------------------------------------------------ *)
(* Hardware cost backends                                             *)
(* ------------------------------------------------------------------ *)

let test_uniform_evaluate_identity () =
  let dfg, nodes = diamond () in
  let ci = Isa.Custom_inst.make dfg (Bitset.of_list (Ir.Dfg.node_count dfg) nodes) in
  let u = Isa.Custom_inst.evaluate_with Isa.Hw_model.uniform dfg ci in
  check bool "uniform re-evaluation is the identity" true (ci_sig u = ci_sig ci)

let test_riscv_costs_differ () =
  (* div + add: 32000 ps at 8333 ps/cycle = 4 cycles under uniform,
     22400 ps at 10000 ps/cycle = 3 under riscv; riscv also charges
     register-port area. *)
  let b = B.create () in
  let d = B.add b Ir.Op.Div in
  let a = B.add_with b Ir.Op.Add [ d ] in
  ignore (B.add_with b Ir.Op.Store [ a ]);
  let dfg = B.finish b in
  let set = Bitset.of_list (Ir.Dfg.node_count dfg) [ d; a ] in
  let ci = Isa.Custom_inst.make dfg set in
  let r = Isa.Custom_inst.evaluate_with Isa.Hw_model.riscv dfg ci in
  check int "uniform latency" 4 ci.Isa.Custom_inst.hw_cycles;
  check int "riscv latency" 3 r.Isa.Custom_inst.hw_cycles;
  check bool "riscv charges port area" true
    (r.Isa.Custom_inst.area
     > Isa.Hw_model.set_op_area_with Isa.Hw_model.riscv dfg set);
  check bool "node set unchanged" true
    (Bitset.equal r.Isa.Custom_inst.nodes ci.Isa.Custom_inst.nodes)

let test_backend_registry () =
  let name_of = function
    | Some b -> b.Isa.Hw_model.name
    | None -> "<none>"
  in
  check string "uniform registered" "uniform"
    (name_of (Isa.Hw_model.backend_of_name "uniform"));
  check string "riscv registered" "riscv"
    (name_of (Isa.Hw_model.backend_of_name "riscv"));
  check string "unknown rejected" "<none>"
    (name_of (Isa.Hw_model.backend_of_name "tta"))

let test_riscv_curve_params_distinct () =
  let p = { Ise.Curve.small with Ise.Curve.hw = Isa.Hw_model.riscv } in
  check bool "cache keys distinguish backends" true
    (Ise.Curve.params_key p <> Ise.Curve.params_key Ise.Curve.small)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                      *)
(* ------------------------------------------------------------------ *)

let curve_line generator =
  let dfg_spec =
    { Check.Instance.kinds = [ Ir.Op.Mul; Ir.Op.Add ];
      edges = [ (0, 1) ];
      live_outs = [] }
  in
  let instance =
    { Check.Instance.tasks = []; budget = 0; eps = 1.0; dfg = dfg_spec }
  in
  Batch.Protocol.request_line
    { Batch.Protocol.id = "t0"; op = Batch.Protocol.Curve; instance; generator }

let test_protocol_generator_roundtrip () =
  let line = curve_line Ise.Isegen.Isegen in
  check bool "non-default generator serialised" true
    (contains ~needle:"\"generator\"" line);
  (match Batch.Protocol.parse_request line with
   | Ok req ->
     check bool "generator parsed back" true
       (req.Batch.Protocol.generator = Ise.Isegen.Isegen);
     check string "request_line round-trips" line
       (Batch.Protocol.request_line req)
   | Error msg -> Alcotest.fail msg);
  (* absence on the wire means exhaustive, and stays absent *)
  let legacy = curve_line Ise.Isegen.Exhaustive in
  check bool "default generator omitted from the wire" true
    (not (contains ~needle:"generator" legacy));
  match Batch.Protocol.parse_request legacy with
  | Ok req ->
    check bool "absent generator parses as exhaustive" true
      (req.Batch.Protocol.generator = Ise.Isegen.Exhaustive)
  | Error msg -> Alcotest.fail msg

let test_protocol_keys_distinguish_generators () =
  let prep g =
    match Batch.Protocol.parse_request (curve_line g) with
    | Ok req -> (Batch.Protocol.prepare req).Batch.Protocol.key
    | Error msg -> Alcotest.fail msg
  in
  let exhaustive = prep Ise.Isegen.Exhaustive in
  let isegen = prep Ise.Isegen.Isegen in
  check bool "curve keys differ by generator" true (exhaustive <> isegen);
  check bool "legacy key has no tag" true
    (not (contains ~needle:"+isegen" exhaustive));
  check bool "isegen key is tagged" true
    (contains ~needle:"curve+isegen-" isegen)

let test_exhaustive_batch_byte_identity () =
  (* an explicit exhaustive generator answers byte-identically to a
     legacy request without the field *)
  match
    (Batch.Protocol.parse_request (curve_line Ise.Isegen.Exhaustive),
     Batch.Protocol.parse_request (curve_line Ise.Isegen.Isegen))
  with
  | Ok legacy, Ok isegen ->
    let explicit = { legacy with Batch.Protocol.generator = Ise.Isegen.Exhaustive } in
    check string "explicit exhaustive = legacy bytes"
      (Batch.Service.respond legacy)
      (Batch.Service.respond explicit);
    check bool "isegen response still renders" true
      (String.length (Batch.Service.respond isegen) > 0)
  | _ -> Alcotest.fail "parse failed"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "isegen"
    [ ( "generation",
        [ Alcotest.test_case "diamond optimum via hull repair" `Quick
            test_diamond_optimum;
          qt prop_isegen_all_legal;
          qt prop_isegen_respects_allowed;
          qt prop_isegen_distinct;
          Alcotest.test_case "same seed deterministic" `Quick
            test_same_seed_deterministic;
          Alcotest.test_case "distinct seeds diverge" `Quick
            test_distinct_seeds_diverge;
          Alcotest.test_case "best_cut is the sorted head" `Quick
            test_best_cut_is_head ] );
      ( "guard",
        [ Alcotest.test_case "anytime cut under fuel" `Quick
            test_guard_anytime_cut ] );
      ( "dispatch",
        [ Alcotest.test_case "cap saturation counter" `Quick
            test_cap_saturation_counter;
          Alcotest.test_case "isegen breaks the cap" `Quick
            test_isegen_breaks_the_cap;
          Alcotest.test_case "auto switches on saturation" `Quick
            test_auto_switches;
          Alcotest.test_case "auto stays exhaustive below caps" `Quick
            test_auto_stays_exhaustive ] );
      ( "hw-model",
        [ Alcotest.test_case "uniform evaluation is identity" `Quick
            test_uniform_evaluate_identity;
          Alcotest.test_case "riscv costs differ" `Quick test_riscv_costs_differ;
          Alcotest.test_case "backend registry" `Quick test_backend_registry;
          Alcotest.test_case "curve params distinguish backends" `Quick
            test_riscv_curve_params_distinct ] );
      ( "protocol",
        [ Alcotest.test_case "generator round-trips" `Quick
            test_protocol_generator_roundtrip;
          Alcotest.test_case "keys distinguish generators" `Quick
            test_protocol_keys_distinguish_generators;
          Alcotest.test_case "exhaustive batch byte-identity" `Quick
            test_exhaustive_batch_byte_identity ] ) ]
