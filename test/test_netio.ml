(* Obs.Netio plumbing under failure: write_all must push every byte
   through short writes and report (not raise) a vanished peer or a bad
   fd, the waker must stay level-triggered forever once fired, and the
   accept loop must survive hard errors by reporting and backing off
   instead of dying or spinning. *)

let check = Alcotest.check
let bool = Alcotest.bool

(* write_all hits EPIPE when the peer is gone; without this the signal
   would kill the test binary before the return value matters. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* 8 MiB through a socketpair dwarfs the kernel buffer, so the sender
   sees many short writes — the offset-advancing loop either works or
   the received bytes diverge. *)
let test_write_all_partial_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = String.init (8 * 1024 * 1024) (fun i -> Char.chr (i land 0xff)) in
  let got = Buffer.create (String.length payload) in
  let reader =
    Thread.create
      (fun () ->
        let chunk = Bytes.create 65536 in
        let rec go () =
          match Unix.read b chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes got chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error _ -> ()
        in
        go ())
      ()
  in
  check bool "write_all completes" true (Obs.Netio.write_all a payload);
  Unix.close a;
  Thread.join reader;
  Unix.close b;
  check bool "every byte arrived in order" true (Buffer.contents got = payload)

let test_write_all_peer_gone () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  (* large enough that even a buffered first write cannot hide the
     dead peer for the whole payload *)
  check bool "vanished peer reads as false, not an exception" false
    (Obs.Netio.write_all a (String.make (1024 * 1024) 'x'));
  Unix.close a

let test_write_all_bad_fd () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  Unix.close a;
  check bool "closed fd reads as false" false (Obs.Netio.write_all a "hello")

let test_waker_sticky () =
  let w = Obs.Netio.waker () in
  let ready () =
    match Unix.select [ Obs.Netio.waker_fd w ] [] [] 0.2 with
    | r, _, _ -> r <> []
  in
  check bool "not woken initially" false (Obs.Netio.woken w);
  check bool "silent before wake" false (ready ());
  Obs.Netio.wake w;
  Obs.Netio.wake w (* idempotent *);
  check bool "woken after wake" true (Obs.Netio.woken w);
  check bool "select returns at once" true (ready ());
  check bool "still ready — the byte is never consumed" true (ready ());
  check bool "and again: the signal is sticky, not edge-triggered" true
    (ready ());
  Obs.Netio.close_waker w;
  Obs.Netio.close_waker w (* idempotent *)

(* A dead listener fd makes every select raise EBADF.  The loop must
   keep running, reporting each error through [on_error] with a growing
   backoff — and still honour [stop]. *)
let test_accept_loop_survives_bad_listener () =
  let w = Obs.Netio.waker () in
  (* created after the waker so nothing re-opens this fd number *)
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close sock;
  let errors = Atomic.make 0 in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Obs.Netio.accept_loop
          ~on_error:(fun (_ : Unix.error) -> Atomic.incr errors)
          ~listeners:[ sock ] ~waker:w
          ~stop:(fun () -> Atomic.get stop)
          ~on_accept:(fun fd _ ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get errors < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check bool "loop still alive after repeated hard errors" true
    (Atomic.get errors >= 2);
  Atomic.set stop true;
  Thread.join th;
  Obs.Netio.close_waker w

let () =
  Alcotest.run "netio"
    [ ( "netio",
        [ Alcotest.test_case "write_all pushes through short writes" `Quick
            test_write_all_partial_writes;
          Alcotest.test_case "write_all reports a vanished peer" `Quick
            test_write_all_peer_gone;
          Alcotest.test_case "write_all reports a bad fd" `Quick
            test_write_all_bad_fd;
          Alcotest.test_case "waker is sticky" `Quick test_waker_sticky;
          Alcotest.test_case "accept loop survives a bad listener" `Quick
            test_accept_loop_survives_bad_listener ] ) ]
