(* The golden regression corpus: committed requests with committed
   expected responses, so any solver-output drift — solver behaviour,
   canonicalization, hashing, serialization — fails tier-1 instead of
   waiting for the fuzzer to stumble on it.  Regenerate deliberately
   with `make golden-update`. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (if String.trim l = "" then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* dune runtest runs in test/ (where the (deps) copies land); dune exec
   from the project root sees the source tree instead *)
let golden file =
  let local = Filename.concat "golden" file in
  if Sys.file_exists local then local else Filename.concat "test/golden" file

let cases = lazy (read_lines (golden "cases.jsonl"))
let expected = lazy (read_lines (golden "expected.jsonl"))

let requests () =
  List.map
    (fun line ->
      match Batch.Protocol.parse_request line with
      | Ok r -> r
      | Error msg -> Alcotest.failf "golden case does not parse: %s\n%s" msg line)
    (Lazy.force cases)

let fresh_memo () =
  Engine.Memo.create ~shards:4 ~spill:false ~namespace:"golden" ()

let check_lines label actual =
  List.iteri
    (fun i (want, got) -> check string (Printf.sprintf "%s line %d" label i) want got)
    (List.combine (Lazy.force expected) actual)

let test_corpus_shape () =
  let n = List.length (Lazy.force cases) in
  check bool "about 20 cases" true (n >= 18 && n <= 30);
  check int "one response per request" n (List.length (Lazy.force expected));
  (* every op appears *)
  let ops = List.map (fun r -> r.Batch.Protocol.op) (requests ()) in
  List.iter
    (fun op -> check bool "op represented" true (List.mem op ops))
    [ Batch.Protocol.Edf; Rms; Pareto_exact; Pareto_approx; Curve ]

let test_sequential_matches_expected () =
  check_lines "sequential" (List.map Batch.Service.respond (requests ()))

(* The iterative-generator subset: the corpus must carry isegen curve
   requests, their keys must wear the generator tag (so they can never
   alias an exhaustive memo entry), and replaying just that subset must
   reproduce the committed bytes. *)
let test_isegen_subset_matches_expected () =
  let tagged = "curve+" ^ Ise.Isegen.choice_to_string Ise.Isegen.Isegen ^ "-" in
  let subset =
    List.filter
      (fun ((r : Batch.Protocol.request), _) ->
        r.Batch.Protocol.generator = Ise.Isegen.Isegen)
      (List.combine (requests ()) (Lazy.force expected))
  in
  check bool "corpus contains isegen cases" true (List.length subset >= 4);
  List.iteri
    (fun i ((req : Batch.Protocol.request), want) ->
      let prepared = Batch.Protocol.prepare req in
      check bool
        (Printf.sprintf "isegen key %d wears the generator tag" i)
        true
        (String.length prepared.Batch.Protocol.key > String.length tagged
         && String.sub prepared.Batch.Protocol.key 0 (String.length tagged)
            = tagged);
      check string
        (Printf.sprintf "isegen reply %d byte-identical" i)
        want
        (Batch.Service.respond req))
    subset

let test_batch_cold_matches_expected () =
  let lines, stats =
    Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
    Batch.Service.run ~pool ~memo:(fresh_memo ()) (requests ())
  in
  check_lines "cold batch" lines;
  check bool "corpus contains duplicates" true (stats.Batch.Service.dedup_hits > 0);
  check bool "corpus contains a sweep" true (stats.Batch.Service.swept > 1)

let test_batch_warm_matches_expected () =
  let memo = fresh_memo () in
  let reqs = requests () in
  let _ = Batch.Service.run ~memo reqs in
  let lines, stats = Batch.Service.run ~memo reqs in
  check_lines "warm batch" lines;
  check int "every unique request served from the memo"
    stats.Batch.Service.unique stats.Batch.Service.memo_hits

let () =
  Alcotest.run "golden"
    [ ( "golden",
        [ Alcotest.test_case "corpus shape" `Quick test_corpus_shape;
          Alcotest.test_case "sequential matches expected" `Quick
            test_sequential_matches_expected;
          Alcotest.test_case "isegen subset matches expected" `Quick
            test_isegen_subset_matches_expected;
          Alcotest.test_case "batch (cold) matches expected" `Quick
            test_batch_cold_matches_expected;
          Alcotest.test_case "batch (warm) matches expected" `Quick
            test_batch_warm_matches_expected ] ) ]
