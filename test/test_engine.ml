(* Engine subsystem tests: the domain pool (determinism, exception
   propagation), the persistent cache (round-trip, version invalidation,
   corruption tolerance) and the telemetry counters. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------ Parallel ------------------------------ *)

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Engine.Parallel.Pool.with_pool ~jobs @@ fun pool ->
      check (Alcotest.list int)
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs)
        (Engine.Parallel.Pool.map pool f xs))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  Engine.Parallel.Pool.with_pool ~jobs:4 @@ fun pool ->
  check (Alcotest.list int) "empty" [] (Engine.Parallel.Pool.map pool succ []);
  check (Alcotest.list int) "singleton" [ 2 ]
    (Engine.Parallel.Pool.map pool succ [ 1 ])

exception Boom of int

let test_map_propagates_exception () =
  Engine.Parallel.Pool.with_pool ~jobs:3 @@ fun pool ->
  match
    Engine.Parallel.Pool.map pool
      (fun x -> if x = 5 then raise (Boom x) else x)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 5 -> ()

let test_map_reduce_order () =
  let xs = List.init 50 Fun.id in
  let got =
    Engine.Parallel.Pool.with_pool ~jobs:4 @@ fun pool ->
    Engine.Parallel.Pool.map_reduce pool ~map:string_of_int
      ~reduce:(fun acc s -> acc ^ "," ^ s)
      "" xs
  in
  let want =
    List.fold_left (fun acc s -> acc ^ "," ^ s) "" (List.map string_of_int xs)
  in
  check Alcotest.string "in-order fold" want got

(* The engine's headline guarantee: curve generation on a domain pool is
   bit-identical to the sequential path, for every modelled kernel.
   Kernels are outer pool items and each generation nests per-block /
   per-budget items onto the same pool. *)
let test_curves_parallel_equals_sequential () =
  let kernels = Kernels.all () in
  let seq =
    List.map (fun (_, cfg) -> Ise.Curve.generate ~params:Ise.Curve.small cfg)
      kernels
  in
  let par =
    Engine.Parallel.Pool.with_pool ~jobs:4 @@ fun pool ->
    Engine.Parallel.Pool.map pool
      (fun (_, cfg) -> Ise.Curve.generate ~pool ~params:Ise.Curve.small cfg)
      kernels
  in
  List.iteri
    (fun i (a, b) ->
      let name = fst (List.nth kernels i) in
      check bool (name ^ ": base cycles equal") true
        (Isa.Config.base_cycles a = Isa.Config.base_cycles b);
      check bool (name ^ ": curve points bit-identical") true
        (Isa.Config.points a = Isa.Config.points b))
    (List.combine seq par)

(* ------------------------------- Cache -------------------------------- *)

let with_temp_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "isecache-test-%d" (Unix.getpid ()))
  in
  let saved = Engine.Cache.dir () in
  Engine.Cache.set_dir dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Engine.Cache.clear ());
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      Engine.Cache.set_dir saved)
    f

let test_cache_round_trip () =
  with_temp_cache @@ fun () ->
  let value = ([ 1; 2; 3 ], "payload", 3.25) in
  Engine.Cache.store ~namespace:"test" ~key:"k1" value;
  check bool "stored value reads back" true
    (Engine.Cache.find ~namespace:"test" ~key:"k1" () = Some value);
  check bool "other key misses" true
    ((Engine.Cache.find ~namespace:"test" ~key:"k2" ()
       : (int list * string * float) option)
    = None);
  (match Engine.Cache.entries () with
   | [ e ] ->
     check Alcotest.string "namespace" "test" e.Engine.Cache.namespace;
     check Alcotest.string "key" "k1" e.Engine.Cache.key
   | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  check int "clear removes one file" 1 (Engine.Cache.clear ());
  check bool "empty after clear" true (Engine.Cache.entries () = [])

let test_cache_version_invalidation () =
  with_temp_cache @@ fun () ->
  Engine.Cache.store_versioned
    ~version:(Engine.Cache.format_version - 1)
    ~namespace:"test" ~key:"old" 42;
  check bool "outdated entry reads as a miss" true
    ((Engine.Cache.find ~namespace:"test" ~key:"old" () : int option) = None)

let test_cache_truncated_file () =
  with_temp_cache @@ fun () ->
  Engine.Cache.store ~namespace:"test" ~key:"t" (Array.init 256 Fun.id);
  let file = Engine.Cache.file_of ~namespace:"test" ~key:"t" in
  let size = (Unix.stat file).Unix.st_size in
  Unix.truncate file (size / 2);
  check bool "truncated entry reads as a miss, not an exception" true
    ((Engine.Cache.find ~namespace:"test" ~key:"t" () : int array option)
    = None);
  (* still visible to `cache show` and reclaimable by `cache clear` *)
  (match Engine.Cache.entries () with
   | [ e ] ->
     check Alcotest.string "reported unreadable" "<unreadable>"
       e.Engine.Cache.namespace
   | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  check int "clear reclaims it" 1 (Engine.Cache.clear ())

let test_cache_disabled () =
  with_temp_cache @@ fun () ->
  Engine.Cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Engine.Cache.set_enabled true) @@ fun () ->
  Engine.Cache.store ~namespace:"test" ~key:"d" 1;
  check bool "store is a no-op" true (Engine.Cache.entries () = []);
  check bool "find misses" true
    ((Engine.Cache.find ~namespace:"test" ~key:"d" () : int option) = None)

let test_cache_telemetry () =
  with_temp_cache @@ fun () ->
  let h0 = Engine.Telemetry.counter "cache.hits"
  and m0 = Engine.Telemetry.counter "cache.misses" in
  Engine.Cache.store ~namespace:"test" ~key:"h" 7;
  ignore (Engine.Cache.find ~namespace:"test" ~key:"h" () : int option);
  ignore (Engine.Cache.find ~namespace:"test" ~key:"absent" () : int option);
  check int "hit counted" (h0 + 1) (Engine.Telemetry.counter "cache.hits");
  check int "miss counted" (m0 + 1) (Engine.Telemetry.counter "cache.misses")

(* ----------------------------- Telemetry ------------------------------ *)

let test_telemetry_counters () =
  Engine.Telemetry.reset ();
  check int "untouched counter reads 0" 0 (Engine.Telemetry.counter "t.c");
  Engine.Telemetry.incr "t.c";
  Engine.Telemetry.add "t.c" 4;
  check int "incr + add accumulate" 5 (Engine.Telemetry.counter "t.c");
  check bool "listed in counters ()" true
    (List.mem_assoc "t.c" (Engine.Telemetry.counters ()));
  Engine.Telemetry.reset ();
  check int "reset zeroes" 0 (Engine.Telemetry.counter "t.c")

let test_telemetry_timers () =
  Engine.Telemetry.reset ();
  let x = Engine.Telemetry.time "t.t" (fun () -> 41 + 1) in
  check int "time returns the thunk's result" 42 x;
  check bool "time accumulated" true (Engine.Telemetry.timer "t.t" >= 0.);
  Engine.Telemetry.add_time "t.t" 1.5;
  check bool "add_time accumulates" true (Engine.Telemetry.timer "t.t" >= 1.5);
  (try Engine.Telemetry.time "t.exn" (fun () -> failwith "boom")
   with Failure _ -> ());
  check bool "timer recorded even on exception" true
    (List.mem_assoc "t.exn" (Engine.Telemetry.timers ()))

let test_telemetry_pipeline_monotone () =
  Engine.Telemetry.reset ();
  let cfg = Kernels.find "crc32" in
  ignore (Ise.Curve.generate ~params:Ise.Curve.small cfg);
  let cand1 = Engine.Telemetry.counter "enumerate.candidates" in
  check bool "enumeration reported" true (cand1 > 0);
  check int "one curve generated" 1
    (Engine.Telemetry.counter "curve.curves_generated");
  ignore (Ise.Curve.generate ~params:Ise.Curve.small cfg);
  check bool "counters are monotone" true
    (Engine.Telemetry.counter "enumerate.candidates" >= cand1);
  check int "second generation counted" 2
    (Engine.Telemetry.counter "curve.curves_generated");
  check bool "curve timer advanced" true
    (Engine.Telemetry.timer "curve.generate" > 0.)

let () =
  Alcotest.run "engine"
    [ ( "parallel",
        [ Alcotest.test_case "map matches List.map" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map on empty / singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "map propagates exceptions" `Quick
            test_map_propagates_exception;
          Alcotest.test_case "map_reduce folds in order" `Quick
            test_map_reduce_order;
          Alcotest.test_case "curves bit-identical across domains" `Quick
            test_curves_parallel_equals_sequential ] );
      ( "cache",
        [ Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "version invalidation" `Quick
            test_cache_version_invalidation;
          Alcotest.test_case "truncated file recovery" `Quick
            test_cache_truncated_file;
          Alcotest.test_case "disabled cache" `Quick test_cache_disabled;
          Alcotest.test_case "hit/miss telemetry" `Quick test_cache_telemetry ] );
      ( "telemetry",
        [ Alcotest.test_case "counters" `Quick test_telemetry_counters;
          Alcotest.test_case "timers" `Quick test_telemetry_timers;
          Alcotest.test_case "pipeline counters monotone" `Quick
            test_telemetry_pipeline_monotone ] ) ]
