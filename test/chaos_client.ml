(* Socket-level hostile client for scripts/chaos_smoke.sh: throws
   garbage, oversized lines, slow-loris trickles and mid-request
   aborts at a live daemon and asserts only the *liveness* contract —
   every round ends in an explicit error line, an EOF/reset, or a
   clean close, never a hang.  Correctness of surviving traffic is the
   harness's job (byte-identity against the golden corpus); this
   binary's job is to not be a polite client.

     chaos_client SOCKET MODE SEED ROUNDS
     MODE: garbage | oversized | slowloris | abort

   Exit 0 when every round terminated, 1 on a wedge (no reaction
   within the per-round timeout), 2 on usage errors. *)

let usage () =
  prerr_endline
    "usage: chaos_client SOCKET (garbage|oversized|slowloris|abort) SEED \
     ROUNDS";
  exit 2

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* best-effort write: the daemon reaping us mid-send (EPIPE, reset) is
   an expected outcome, not a failure *)
let send fd s =
  try
    ignore (Unix.write_substring fd s 0 (String.length s) : int);
    true
  with Unix.Unix_error _ -> false

(* one response line, EOF, or a bounded timeout — never an infinite
   block, because a wedge is exactly what we are here to detect *)
let recv ?(timeout = 10.) fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if Unix.gettimeofday () >= deadline then `Timeout
    else
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd b 0 (Bytes.length b) with
        | 0 ->
          if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf b 0 n;
          let s = Buffer.contents buf in
          (match String.index_opt s '\n' with
           | Some i -> `Line (String.sub s 0 i)
           | None -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> `Eof)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let wedged mode round what =
  Printf.eprintf "chaos_client: %s round %d wedged (%s)\n%!" mode round what;
  exit 1

let garbage_line () =
  let n = 1 + Random.int 120 in
  String.init n (fun _ ->
      (* printable junk, newline-free, brace-heavy to tease the parser *)
      match Random.int 6 with
      | 0 -> '{'
      | 1 -> '}'
      | 2 -> '"'
      | _ -> Char.chr (32 + Random.int 95))

let run_garbage sock rounds =
  for round = 1 to rounds do
    let fd = connect sock in
    let lines = 1 + Random.int 5 in
    for _ = 1 to lines do
      ignore (send fd (garbage_line () ^ "\n") : bool)
    done;
    (* every junk line must be answered (parse error) or the
       connection explicitly torn down — silence is a wedge *)
    (match recv fd with
     | `Line l when contains l "error" -> ()
     | `Line l -> wedged "garbage" round ("unexpected reply: " ^ l)
     | `Eof -> ()
     | `Timeout -> wedged "garbage" round "no reaction to junk");
    close fd
  done

let run_oversized sock rounds =
  for round = 1 to rounds do
    let fd = connect sock in
    (* far past any sane --max-request-bytes the harness configures *)
    let blob = String.make (256 * 1024) 'x' in
    ignore (send fd blob : bool);
    ignore (send fd "\n" : bool);
    (match recv fd with
     | `Line l when contains l "oversized" -> ()
     | `Line _ | `Eof ->
       (* a reset can clobber the error line in flight; EOF still
          proves the reap happened *)
       ()
     | `Timeout -> wedged "oversized" round "no reap of an oversized line");
    close fd
  done

let run_slowloris sock rounds =
  for round = 1 to rounds do
    let fd = connect sock in
    let reaped = ref false in
    (* trickle a request line one byte at a time, never finishing it;
       the daemon's line deadline must cut us off *)
    (try
       for _ = 1 to 200 do
         if not !reaped then begin
           if not (send fd "x") then reaped := true
           else
             match Unix.select [ fd ] [] [] 0.1 with
             | [], _, _ -> ()
             | _ -> reaped := true
         end
       done
     with Unix.Unix_error _ -> reaped := true);
    if not !reaped then wedged "slowloris" round "trickle never reaped";
    (match recv ~timeout:5. fd with
     | `Line _ | `Eof -> ()
     | `Timeout -> wedged "slowloris" round "reap signalled but no close");
    close fd
  done

let run_abort sock rounds =
  for round = 1 to rounds do
    ignore round;
    let fd = connect sock in
    (* half a plausible request, then vanish without reading *)
    ignore (send fd "{\"id\": \"chaos\", \"op\": \"cur" : bool);
    if Random.bool () then ignore (send fd "ve\", " : bool);
    close fd
  done

let () =
  match Sys.argv with
  | [| _; sock; mode; seed; rounds |] -> (
    let seed = try int_of_string seed with Failure _ -> usage () in
    let rounds = try int_of_string rounds with Failure _ -> usage () in
    Random.init seed;
    match mode with
    | "garbage" -> run_garbage sock rounds
    | "oversized" -> run_oversized sock rounds
    | "slowloris" -> run_slowloris sock rounds
    | "abort" -> run_abort sock rounds
    | _ -> usage ())
  | _ -> usage ()
