let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

module P = Batch.Protocol
module R = Check.Repro

let instances ~seed n =
  List.init n (fun i -> Check.Gen.instance (Util.Prng.create (seed + i)))

(* ------------------------------------------------------------------ *)
(* Repro codec round-trips (the batch wire format)                    *)
(* ------------------------------------------------------------------ *)

let test_emitter_matches_instance_to_json () =
  List.iter
    (fun inst ->
      check string "json_of_instance emission" (Check.Instance.to_json inst)
        (R.to_string (R.json_of_instance inst)))
    (instances ~seed:100 200)

let test_parse_emit_idempotent () =
  List.iter
    (fun inst ->
      let once = R.to_string (R.json_of_instance inst) in
      check string "parse-emit fixpoint" once (R.to_string (R.parse once));
      let decoded = R.decode_instance (R.parse once) in
      check bool "decode round-trip" true (Check.Instance.equal inst decoded))
    (instances ~seed:300 200)

let test_parser_rejects_malformed_unicode_escape () =
  (* used to raise Failure("int_of_string") instead of Parse_error *)
  List.iter
    (fun text ->
      match R.parse text with
      | _ -> Alcotest.failf "parsed %S" text
      | exception R.Parse_error _ -> ())
    [ {|"\uZZZZ"|}; {|"\u00_0"|}; {|"\u"|}; {|"\u12"|} ]

let test_as_int_rejects_unrepresentable () =
  check int "2^53 still exact" 9007199254740992 (R.as_int (R.Num 9007199254740992.));
  (match R.as_int (R.Num 1e30) with
   | _ -> Alcotest.fail "accepted 1e30 as an int"
   | exception R.Parse_error _ -> ());
  match R.as_int (R.Num 0.5) with
  | _ -> Alcotest.fail "accepted 0.5 as an int"
  | exception R.Parse_error _ -> ()

let test_request_line_round_trip () =
  List.iteri
    (fun i inst ->
      let op =
        List.nth [ P.Edf; P.Rms; P.Pareto_exact; P.Pareto_approx; P.Curve ] (i mod 5)
      in
      let req = { P.id = Printf.sprintf "r%d" i; op; instance = inst;
                  generator = Ise.Isegen.Exhaustive }
      in
      match P.parse_request (P.request_line req) with
      | Ok back ->
        check string "id" req.P.id back.P.id;
        check bool "op" true (req.P.op = back.P.op);
        check bool "instance" true (Check.Instance.equal req.P.instance back.P.instance)
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    (instances ~seed:500 50)

let test_parse_request_errors () =
  let bad l =
    match P.parse_request l with
    | Ok _ -> Alcotest.failf "accepted %S" l
    | Error _ -> ()
  in
  bad "not json";
  bad {|{"id": "x", "op": "nope", "instance": {}}|};
  bad {|{"id": "x", "op": "edf"}|};
  (* a structurally fine but invalid instance: period 0 *)
  bad
    {|{"id": "x", "op": "edf", "instance": {"budget": 1, "eps": 0.5, "tasks": [{"period": 0, "base": 5, "points": []}], "dfg": {"kinds": [], "edges": [], "live_outs": []}}}|}

(* ------------------------------------------------------------------ *)
(* Structural hashing                                                 *)
(* ------------------------------------------------------------------ *)

let test_hash_stable_across_runs () =
  (* the key is a pure function of the canonical bytes: pin one so an
     accidental change to hashing or canonicalization fails loudly *)
  let inst =
    { Check.Instance.tasks =
        [ { Check.Instance.period = 100;
            base = 50;
            points = [ { Check.Instance.area = 5; cycles = 30 } ] } ];
      budget = 7;
      eps = 0.5;
      dfg = { Check.Instance.kinds = []; edges = []; live_outs = [] } }
  in
  let key = (P.prepare
       { P.id = "s"; op = P.Edf; instance = inst;
         generator = Ise.Isegen.Exhaustive })
      .P.key in
  check string "pinned key" "edf-9a2649cf7ae86115" key;
  check string "pure function of the bytes" key
    (P.prepare
       { P.id = "other"; op = P.Edf; instance = inst;
         generator = Ise.Isegen.Exhaustive })
      .P.key

let test_hash_collision_sanity () =
  (* 10k generated instances: equal keys must mean equal canonical
     bytes — i.e. FNV never conflates distinct canonical instances *)
  let by_key = Hashtbl.create 4096 in
  let distinct_keys = Hashtbl.create 4096 in
  List.iter
    (fun inst ->
      let p =
        P.prepare
          { P.id = "c"; op = P.Edf; instance = inst;
            generator = Ise.Isegen.Exhaustive }
      in
      (* the edf key hashes only the fields the op consumes: budget and
         tasks (eps and the DFG are blanked) *)
      let bytes =
        Check.Instance.to_json
          { p.P.canonical with
            Check.Instance.eps = 1.0;
            dfg = { Check.Instance.kinds = []; edges = []; live_outs = [] } }
      in
      Hashtbl.replace distinct_keys p.P.key ();
      match Hashtbl.find_opt by_key p.P.key with
      | None -> Hashtbl.add by_key p.P.key bytes
      | Some other -> check string "no collision" other bytes)
    (instances ~seed:1000 10_000);
  check bool "stream is actually diverse" true (Hashtbl.length distinct_keys > 5_000)

let test_canonicalization_invariance () =
  List.iter
    (fun (inst : Check.Instance.t) ->
      let canonical, _ = Batch.Canon.instance inst in
      let permuted =
        { inst with Check.Instance.tasks = List.rev inst.Check.Instance.tasks }
      in
      let renumbered =
        { inst with Check.Instance.dfg = Batch.Props.renumber_dfg inst.Check.Instance.dfg }
      in
      check bool "task order erased" true
        (Check.Instance.equal canonical (fst (Batch.Canon.instance permuted)));
      check bool "node numbering erased" true
        (Check.Instance.equal canonical (fst (Batch.Canon.instance renumbered)));
      check bool "canonicalization preserves validity" true
        (Check.Instance.valid canonical))
    (instances ~seed:2000 300)

let test_canonical_permutation_projects_tasks () =
  List.iter
    (fun (inst : Check.Instance.t) ->
      let canonical, perm = Batch.Canon.instance inst in
      let ctasks = Array.of_list canonical.Check.Instance.tasks in
      List.iteri
        (fun i (ts : Check.Instance.task_spec) ->
          let c = ctasks.(perm.(i)) in
          check int "period" ts.Check.Instance.period c.Check.Instance.period;
          check int "base" ts.Check.Instance.base c.Check.Instance.base)
        inst.Check.Instance.tasks)
    (instances ~seed:2500 200)

(* ------------------------------------------------------------------ *)
(* EDF sweep                                                          *)
(* ------------------------------------------------------------------ *)

let test_run_sweep_matches_run () =
  List.iter
    (fun (inst : Check.Instance.t) ->
      let tasks = Check.Instance.tasks inst in
      let b = inst.Check.Instance.budget in
      let budgets = [ 0; b / 3; b / 2; b; b + 1; (2 * b) + 5 ] in
      let swept = Core.Edf_select.run_sweep ~budgets tasks in
      check int "one selection per budget" (List.length budgets) (List.length swept);
      List.iter2
        (fun budget sel ->
          check bool "bit-identical to run" true
            (Core.Edf_select.run ~budget tasks = sel))
        budgets swept)
    (instances ~seed:3000 100)

let test_run_sweep_edges () =
  check bool "empty budgets" true (Core.Edf_select.run_sweep ~budgets:[] [] = []);
  (match Core.Edf_select.run_sweep ~budgets:[ -1 ] [] with
   | _ -> Alcotest.fail "accepted a negative budget"
   | exception Invalid_argument _ -> ());
  let sels = Core.Edf_select.run_sweep ~budgets:[ 0; 3 ] [] in
  check int "no tasks" 2 (List.length sels)

(* ------------------------------------------------------------------ *)
(* Memo                                                               *)
(* ------------------------------------------------------------------ *)

let test_memo_round_trip () =
  let m = Engine.Memo.create ~shards:4 ~spill:false ~namespace:"test-memo" () in
  check bool "miss" true (Engine.Memo.find m ~key:"a" = None);
  Engine.Memo.store m ~key:"a" "payload";
  check bool "hit" true (Engine.Memo.find m ~key:"a" = Some "payload");
  let v, hit = Engine.Memo.find_or_compute m ~key:"a" (fun () -> assert false) in
  check bool "find_or_compute hit" true (hit && v = "payload");
  let v, hit = Engine.Memo.find_or_compute m ~key:"b" (fun () -> "fresh") in
  check bool "find_or_compute miss computes" true ((not hit) && v = "fresh");
  check int "resident entries" 2 (Engine.Memo.size m);
  check int "shards" 4 (Engine.Memo.shards m);
  Engine.Memo.clear m;
  check int "cleared" 0 (Engine.Memo.size m);
  match Engine.Memo.create ~shards:0 ~namespace:"x" () with
  | _ -> Alcotest.fail "accepted 0 shards"
  | exception Invalid_argument _ -> ()

let with_temp_cache f =
  let saved_dir = Engine.Cache.dir () in
  let saved_enabled = Engine.Cache.enabled () in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "isecustom-test-memo-%d" (Unix.getpid ()))
  in
  Engine.Cache.set_dir tmp;
  Engine.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      ignore (Engine.Cache.clear ());
      Engine.Cache.set_dir saved_dir;
      Engine.Cache.set_enabled saved_enabled)
    f

let test_memo_spills_to_cache () =
  with_temp_cache @@ fun () ->
  let m = Engine.Memo.create ~shards:2 ~spill:true ~namespace:"test-spill" () in
  Engine.Memo.store m ~key:"k" "spilled";
  (* a fresh memo has empty shards but finds the entry on disk and
     promotes it *)
  let m2 = Engine.Memo.create ~shards:2 ~spill:true ~namespace:"test-spill" () in
  check bool "spill hit" true (Engine.Memo.find m2 ~key:"k" = Some "spilled");
  check int "promoted into the shard" 1 (Engine.Memo.size m2);
  (* namespaces isolate *)
  let m3 = Engine.Memo.create ~shards:2 ~spill:true ~namespace:"test-other" () in
  check bool "namespace isolation" true (Engine.Memo.find m3 ~key:"k" = None)

(* ------------------------------------------------------------------ *)
(* Service                                                            *)
(* ------------------------------------------------------------------ *)

let test_batch_equals_sequential_streams () =
  List.iter
    (fun inst ->
      let reqs = Batch.Props.stream_of inst in
      let sequential = List.map Batch.Service.respond reqs in
      let memo = Engine.Memo.create ~shards:4 ~spill:false ~namespace:"test-svc" () in
      let batched, stats =
        Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
        Batch.Service.run ~pool ~memo reqs
      in
      check bool "byte-identical" true (batched = sequential);
      check bool "dedup fired" true (stats.Batch.Service.dedup_hits > 0);
      check bool "sweep fired" true (stats.Batch.Service.swept > 1);
      let warm, warm_stats = Batch.Service.run ~memo reqs in
      check bool "warm byte-identical" true (warm = sequential);
      check int "warm answers come from the memo" warm_stats.Batch.Service.unique
        warm_stats.Batch.Service.memo_hits)
    (instances ~seed:4000 20)

let test_service_stats_accounting () =
  let inst = Check.Gen.instance (Util.Prng.create 77) in
  let reqs = Batch.Props.stream_of inst in
  let _, stats = Batch.Service.run reqs in
  check int "requests" (List.length reqs) stats.Batch.Service.requests;
  check int "dedup + unique = requests" stats.Batch.Service.requests
    (stats.Batch.Service.unique + stats.Batch.Service.dedup_hits);
  check bool "hit rate in [0, 1]" true
    (Batch.Service.hit_rate stats >= 0. && Batch.Service.hit_rate stats <= 1.);
  let empty_lines, empty = Batch.Service.run [] in
  check bool "empty stream" true
    (empty_lines = [] && empty.Batch.Service.requests = 0
    && Batch.Service.hit_rate empty = 0.)

let () =
  Alcotest.run "batch"
    [ ( "repro-codec",
        [ Alcotest.test_case "emitter matches Instance.to_json" `Quick
            test_emitter_matches_instance_to_json;
          Alcotest.test_case "parse-emit idempotent" `Quick test_parse_emit_idempotent;
          Alcotest.test_case "malformed \\u escapes rejected" `Quick
            test_parser_rejects_malformed_unicode_escape;
          Alcotest.test_case "as_int range guard" `Quick
            test_as_int_rejects_unrepresentable;
          Alcotest.test_case "request line round-trip" `Quick
            test_request_line_round_trip;
          Alcotest.test_case "parse_request errors" `Quick test_parse_request_errors ] );
      ( "hashing",
        [ Alcotest.test_case "stable pinned key" `Quick test_hash_stable_across_runs;
          Alcotest.test_case "collision sanity over 10k instances" `Slow
            test_hash_collision_sanity;
          Alcotest.test_case "canonicalization invariance" `Quick
            test_canonicalization_invariance;
          Alcotest.test_case "permutation projects tasks" `Quick
            test_canonical_permutation_projects_tasks ] );
      ( "edf-sweep",
        [ Alcotest.test_case "run_sweep ≡ run" `Quick test_run_sweep_matches_run;
          Alcotest.test_case "edge cases" `Quick test_run_sweep_edges ] );
      ( "memo",
        [ Alcotest.test_case "round trip" `Quick test_memo_round_trip;
          Alcotest.test_case "spill + promotion" `Quick test_memo_spills_to_cache ] );
      ( "service",
        [ Alcotest.test_case "batch ≡ sequential, cold and warm" `Slow
            test_batch_equals_sequential_streams;
          Alcotest.test_case "stats accounting" `Quick test_service_stats_accounting ]
      ) ]
