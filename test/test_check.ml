let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let test_uunifast_sums_to_target () =
  let prng = Util.Prng.create 7 in
  for n = 1 to 8 do
    let total = 0.1 +. Util.Prng.float prng 2.0 in
    let us = Check.Gen.uunifast prng ~n ~total in
    check int "n shares" n (List.length us);
    check bool "all positive" true (List.for_all (fun u -> u > 0.) us);
    check (Alcotest.float 1e-6) "sums to total" total
      (List.fold_left ( +. ) 0. us)
  done

let test_generated_instances_valid () =
  let prng = Util.Prng.create 3 in
  for _ = 1 to 200 do
    let inst = Check.Gen.instance (Util.Prng.split prng) in
    check bool "valid" true (Check.Instance.valid inst);
    (* materialisation never raises *)
    ignore (Check.Instance.tasks inst);
    ignore (Check.Instance.dfg inst)
  done

let test_generation_deterministic () =
  let a = Check.Gen.instance (Util.Prng.create 11) in
  let b = Check.Gen.instance (Util.Prng.create 11) in
  let c = Check.Gen.instance (Util.Prng.create 12) in
  check bool "same seed, same instance" true (Check.Instance.equal a b);
  check bool "different seed, different instance" false
    (Check.Instance.equal a c)

(* ------------------------------------------------------------------ *)
(* Oracles                                                            *)
(* ------------------------------------------------------------------ *)

let curve base pts = Isa.Config.of_points ~base_cycles:base pts
let task name period base pts = Rt.Task.make ~name ~period (curve base pts)

let fig32_tasks () =
  [ task "T1" 6 2 [ { Isa.Config.area = 7; cycles = 1 } ];
    task "T2" 8 3 [ { Isa.Config.area = 6; cycles = 2 } ];
    task "T3" 12 6 [ { Isa.Config.area = 4; cycles = 5 } ] ]

let test_oracle_matches_fig32 () =
  let best = Check.Oracle.edf_best ~budget:10 (fig32_tasks ()) in
  check (Alcotest.float 1e-9) "oracle optimum U" 1.0
    best.Core.Selection.utilization;
  check int "oracle optimum area" 10 best.Core.Selection.area

let test_oracle_rta_agrees_with_exact_test () =
  let prng = Util.Prng.create 23 in
  for _ = 1 to 300 do
    let n = Util.Prng.in_range prng 1 5 in
    let pairs =
      List.init n (fun _ ->
          let period = Util.Prng.in_range prng 2 40 in
          (Util.Prng.in_range prng 1 period, period))
    in
    check bool "RTA = Bini–Buttazzo"
      (Rt.Sched.rms_schedulable pairs)
      (Check.Oracle.response_time_schedulable pairs)
  done

(* Satellite: heuristic-vs-optimal ordering of Figure 3.2, each
   heuristic compared against the brute-force oracle rather than the
   DP under test. *)
let test_fig32_heuristic_ordering_vs_oracle () =
  let tasks = fig32_tasks () in
  let oracle = Check.Oracle.edf_best ~budget:10 tasks in
  check (Alcotest.float 1e-9) "oracle schedules at U = 1" 1.0
    oracle.Core.Selection.utilization;
  let u strategy =
    (Core.Heuristics.run strategy ~budget:10 tasks).Core.Selection.utilization
  in
  (* published ordering: optimal (24/24) < serve-first heuristics
     (25/24) < equal division (29/24) *)
  check (Alcotest.float 1e-9) "equal division" (29. /. 24.)
    (u Core.Heuristics.Equal_division);
  List.iter
    (fun strategy ->
      check (Alcotest.float 1e-9)
        (Core.Heuristics.name strategy)
        (25. /. 24.) (u strategy))
    [ Core.Heuristics.Smallest_deadline_first;
      Core.Heuristics.Highest_reduction_first;
      Core.Heuristics.Best_ratio_first ];
  List.iter
    (fun strategy ->
      check bool
        (Core.Heuristics.name strategy ^ " never beats the oracle")
        true
        (u strategy >= oracle.Core.Selection.utilization -. 1e-9))
    Core.Heuristics.all

let prop_heuristics_never_beat_oracle =
  QCheck.Test.make ~name:"heuristics never beat the brute-force oracle"
    ~count:60
    QCheck.(pair Test_helpers.arb_rt_taskset (int_range 0 80))
    (fun (tasks, budget) ->
      let oracle = Check.Oracle.edf_best ~budget tasks in
      List.for_all
        (fun strategy ->
          let h = Core.Heuristics.run strategy ~budget tasks in
          h.Core.Selection.utilization
          >= oracle.Core.Selection.utilization -. 1e-9)
        Core.Heuristics.all)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrinker_minimises () =
  (* "budget at least 12" is a monotone predicate, so greedy shrinking
     must land exactly on the boundary with everything else stripped. *)
  let inst = Check.Gen.instance (Util.Prng.create 5) in
  let inst = { inst with Check.Instance.budget = 57 } in
  let shrunk, steps =
    Check.Shrink.shrink
      ~still_fails:(fun i -> i.Check.Instance.budget >= 12)
      inst
  in
  check bool "made progress" true (steps > 0);
  check int "boundary found" 12 shrunk.Check.Instance.budget;
  check int "tasks stripped" 0 (List.length shrunk.Check.Instance.tasks);
  check int "dfg stripped" 0
    (List.length shrunk.Check.Instance.dfg.Check.Instance.kinds)

let test_shrinker_keeps_validity () =
  let prng = Util.Prng.create 9 in
  for _ = 1 to 50 do
    let inst = Check.Gen.instance (Util.Prng.split prng) in
    List.iter
      (fun c -> check bool "candidate valid" true (Check.Instance.valid c))
      (Check.Shrink.candidates inst)
  done

(* ------------------------------------------------------------------ *)
(* Repro round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let tmp_file name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "isecustom-test-%d-%s" (Unix.getpid ()) name)

let test_repro_roundtrip () =
  let prng = Util.Prng.create 13 in
  for i = 1 to 50 do
    let inst = Check.Gen.instance (Util.Prng.split prng) in
    let file = tmp_file (Printf.sprintf "roundtrip-%d.json" i) in
    Check.Repro.write ~file ~prop:"edf_dp_matches_oracle" ~seed:i inst;
    (match Check.Repro.read file with
     | Ok r ->
       check bool "instance round-trips" true
         (Check.Instance.equal r.Check.Repro.instance inst);
       check Alcotest.string "prop preserved" "edf_dp_matches_oracle"
         r.Check.Repro.prop;
       check int "seed preserved" i r.Check.Repro.seed
     | Error msg -> Alcotest.fail msg);
    Sys.remove file
  done

let test_repro_rejects_garbage () =
  let file = tmp_file "garbage.json" in
  let oc = open_out file in
  output_string oc "{\"version\": 1, \"prop\": \"x\", truncated";
  close_out oc;
  (match Check.Repro.read file with
   | Ok _ -> Alcotest.fail "garbage parsed"
   | Error _ -> ());
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let quiet_config ~seed ~budget =
  { Check.Runner.seed;
    budget;
    suites = [];
    repro_dir = Filename.get_temp_dir_name () }

let test_all_suites_green () =
  let summary = Check.Runner.run (quiet_config ~seed:42 ~budget:40) in
  check bool "no failures" true (Check.Runner.ok summary);
  check int "every property ran" (40 * List.length Check.Prop.all)
    summary.Check.Runner.cases

let test_suite_filter () =
  let config = { (quiet_config ~seed:42 ~budget:5) with suites = [ "engine" ] } in
  let summary = Check.Runner.run config in
  check bool "green" true (Check.Runner.ok summary);
  check int "only the engine properties ran" (5 * 2) summary.Check.Runner.cases

(* The acceptance scenario: an off-by-one in the DP budget must be
   caught, shrunk and persisted as a repro file that replays. *)
let test_injected_bug_caught_and_shrunk () =
  match
    Check.Runner.selftest ~seed:42
      ~repro_dir:(Filename.get_temp_dir_name ()) ()
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_replay_unknown_property () =
  let file = tmp_file "unknown-prop.json" in
  let inst = Check.Gen.instance (Util.Prng.create 1) in
  Check.Repro.write ~file ~prop:"no_such_property" ~seed:1 inst;
  (match Check.Runner.replay file with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown property accepted");
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* Cache corruption handling (satellite)                              *)
(* ------------------------------------------------------------------ *)

let test_cache_corruption_logged_and_recomputed () =
  let tmp = tmp_file "cache-dir" in
  let saved_dir = Engine.Cache.dir () in
  let saved_enabled = Engine.Cache.enabled () in
  let buf = Buffer.create 256 in
  let buf_fmt = Format.formatter_of_buffer buf in
  let saved_level = Engine.Log.level () in
  Engine.Log.set_formatter buf_fmt;
  Engine.Log.set_level Engine.Log.Warn;
  Fun.protect
    ~finally:(fun () ->
      ignore (Engine.Cache.clear ());
      (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Engine.Cache.set_dir saved_dir;
      Engine.Cache.set_enabled saved_enabled;
      Engine.Log.set_level saved_level;
      Engine.Log.set_formatter Format.err_formatter)
    (fun () ->
      Engine.Cache.set_dir tmp;
      Engine.Cache.set_enabled true;
      Engine.Cache.store ~namespace:"t" ~key:"k" [ 1; 2; 3 ];
      let file = Engine.Cache.file_of ~namespace:"t" ~key:"k" in
      let oc = open_out_bin file in
      output_string oc "garbage";
      close_out oc;
      let before = Engine.Telemetry.counter "cache.corrupt" in
      check bool "corrupt file reads as a miss" true
        (Engine.Cache.find ~namespace:"t" ~key:"k" () = (None : int list option));
      check bool "corruption counted" true
        (Engine.Telemetry.counter "cache.corrupt" > before);
      Format.pp_print_flush buf_fmt ();
      let logged = Buffer.contents buf in
      let contains hay needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      check bool "warning mentions recomputing" true
        (contains logged "recomputing");
      (* recompute-and-store repairs the entry *)
      Engine.Cache.store ~namespace:"t" ~key:"k" [ 1; 2; 3 ];
      check bool "repaired entry hits" true
        (Engine.Cache.find ~namespace:"t" ~key:"k" () = Some [ 1; 2; 3 ]))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [ ( "generators",
        [ Alcotest.test_case "UUniFast sums to target" `Quick
            test_uunifast_sums_to_target;
          Alcotest.test_case "instances always valid" `Quick
            test_generated_instances_valid;
          Alcotest.test_case "generation deterministic" `Quick
            test_generation_deterministic ] );
      ( "oracles",
        [ Alcotest.test_case "oracle reproduces Fig 3.2" `Quick
            test_oracle_matches_fig32;
          Alcotest.test_case "RTA agrees with exact RMS test" `Quick
            test_oracle_rta_agrees_with_exact_test;
          Alcotest.test_case "Fig 3.2 heuristic ordering vs oracle" `Quick
            test_fig32_heuristic_ordering_vs_oracle;
          qt prop_heuristics_never_beat_oracle ] );
      ( "shrinker",
        [ Alcotest.test_case "greedy minimisation to the boundary" `Quick
            test_shrinker_minimises;
          Alcotest.test_case "candidates stay valid" `Quick
            test_shrinker_keeps_validity ] );
      ( "repro",
        [ Alcotest.test_case "JSON round-trip" `Quick test_repro_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_repro_rejects_garbage ] );
      ( "runner",
        [ Alcotest.test_case "all suites green" `Quick test_all_suites_green;
          Alcotest.test_case "suite filter" `Quick test_suite_filter;
          Alcotest.test_case "injected bug caught, shrunk, replayable" `Quick
            test_injected_bug_caught_and_shrunk;
          Alcotest.test_case "replay rejects unknown property" `Quick
            test_replay_unknown_property ] );
      ( "cache",
        [ Alcotest.test_case "corruption logged and recomputed" `Quick
            test_cache_corruption_logged_and_recomputed ] ) ]
