(* Emits the golden request corpus on stdout — run via `make
   golden-update`, which regenerates test/golden/cases.jsonl and then
   the expected responses.  Deterministic: handcrafted instances plus
   fixed-seed Check.Gen draws, so regeneration is idempotent. *)

module P = Batch.Protocol

let task ~period ~base points =
  { Check.Instance.period;
    base;
    points =
      List.map (fun (area, cycles) -> { Check.Instance.area; cycles }) points }

let no_dfg = { Check.Instance.kinds = []; edges = []; live_outs = [] }

let two_task =
  { Check.Instance.tasks =
      [ task ~period:100 ~base:50 [ (5, 30); (10, 20) ];
        task ~period:80 ~base:40 [ (4, 25) ] ];
    budget = 10;
    eps = 0.5;
    dfg = no_dfg }

let diamond =
  { two_task with
    Check.Instance.dfg =
      { Check.Instance.kinds = [ Ir.Op.Const; Add; Mul; Xor; Add ];
        edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
        live_outs = [ 4 ] } }

let () =
  let specs =
    (* a budget sweep over one task set, with a permuted and an exact
       duplicate riding along *)
    List.map
      (fun b -> (P.Edf, { two_task with Check.Instance.budget = b }))
      [ 0; 5; 10; 14 ]
    @ [ ( P.Edf,
          { two_task with
            Check.Instance.tasks = List.rev two_task.Check.Instance.tasks } );
        (P.Edf, two_task);
        (P.Rms, two_task);
        (P.Pareto_exact, two_task);
        (P.Pareto_approx, { two_task with Check.Instance.eps = 0.3 });
        (P.Curve, diamond);
        ( P.Curve,
          { diamond with
            Check.Instance.dfg = Batch.Props.renumber_dfg diamond.Check.Instance.dfg
          } ) ]
    @ List.concat_map
        (fun seed ->
          let inst = Check.Gen.instance (Util.Prng.create seed) in
          let op =
            match seed mod 5 with
            | 0 -> P.Edf
            | 1 -> P.Rms
            | 2 -> P.Pareto_exact
            | 3 -> P.Pareto_approx
            | _ -> P.Curve
          in
          (* each generated instance appears twice: the second is the
             warm half of the corpus *)
          [ (op, inst); (op, inst) ])
        [ 1; 2; 3; 4; 5 ]
  in
  let isegen_specs =
    (* the iterative generator covers the same diamond pair (its keys
       must diverge from the exhaustive ones above) plus two generated
       instances of its own *)
    [ (P.Curve, diamond);
      ( P.Curve,
        { diamond with
          Check.Instance.dfg = Batch.Props.renumber_dfg diamond.Check.Instance.dfg
        } ) ]
    @ List.map
        (fun seed -> (P.Curve, Check.Gen.instance (Util.Prng.create seed)))
        [ 6; 7 ]
  in
  let line generator i (op, instance) =
    print_endline
      (P.request_line { P.id = Printf.sprintf "g%02d" i; op; instance; generator })
  in
  List.iteri (line Ise.Isegen.Exhaustive) specs;
  List.iteri
    (fun i spec -> line Ise.Isegen.Isegen (List.length specs + i) spec)
    isegen_specs
