(* Resilience tests: anytime degradation under resource guards (fuel
   and wall-clock), fault injection through the cache and the parallel
   runner, and crash isolation in experiment sweeps. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let curve base pts = Isa.Config.of_points ~base_cycles:base pts
let task name period base pts = Rt.Task.make ~name ~period (curve base pts)

let pairs_of (sel : Core.Selection.t) =
  List.map
    (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
    sel.assignment

(* Six lightly-loaded tasks: the software assignment already schedules,
   so a depth-first dive reaches an incumbent within a handful of
   nodes. *)
let small_tasks () =
  List.init 6 (fun i ->
      task
        (Printf.sprintf "t%d" i)
        (100 + (7 * i))
        10
        [ { Isa.Config.area = 1; cycles = 8 };
          { Isa.Config.area = 2; cycles = 6 };
          { Isa.Config.area = 3; cycles = 4 } ])

(* Twelve tasks x four configurations, everything schedulable and
   in-budget, so with bound pruning disabled the branch-and-bound faces
   the full 4^12-leaf tree — pathological on purpose. *)
let pathological_tasks () =
  List.init 12 (fun i ->
      task
        (Printf.sprintf "p%d" i)
        (1000 + (13 * i))
        5
        [ { Isa.Config.area = 1; cycles = 4 };
          { Isa.Config.area = 2; cycles = 3 };
          { Isa.Config.area = 3; cycles = 2 } ])

(* ------------------------------ guard ------------------------------ *)

let test_tight_fuel_partial_incumbent () =
  let tasks = small_tasks () in
  let budget = 100 in
  (* bound pruning off: the dive still reaches a leaf (an incumbent)
     within the first ~6 nodes, but the 5461-node tree dwarfs the fuel *)
  let got, stats =
    Core.Rms_select.run_instrumented
      ~guard:(Engine.Guard.create ~fuel:10 ())
      ~use_bound:false ~budget tasks
  in
  (match stats.Core.Rms_select.status with
   | Engine.Guard.Partial (Engine.Guard.Fuel 10) -> ()
   | s -> Alcotest.failf "expected fuel exhaustion, got %s"
            (Engine.Guard.string_of_status s));
  match got with
  | None -> Alcotest.fail "no incumbent despite a reachable leaf"
  | Some inc ->
    check bool "incumbent within budget" true (inc.Core.Selection.area <= budget);
    check bool "incumbent RMS-schedulable" true
      (Check.Oracle.response_time_schedulable (pairs_of inc));
    (* re-run unbounded: the true optimum can only be at least as good *)
    (match Core.Rms_select.run ~budget tasks with
     | None -> Alcotest.fail "unbounded run found no optimum"
     | Some opt ->
       check bool "incumbent never beats the optimum" true
         (opt.Core.Selection.utilization
          <= inc.Core.Selection.utilization +. 1e-9))

let test_fuel_partial_is_reproducible () =
  let tasks = pathological_tasks () in
  let budget = 1000 in
  let run () =
    Core.Rms_select.run_instrumented
      ~guard:(Engine.Guard.create ~fuel:50_000 ())
      ~use_bound:false ~budget tasks
  in
  let sel1, stats1 = run () in
  let sel2, stats2 = run () in
  check bool "same incumbent" true (sel1 = sel2);
  check int "same nodes explored" stats1.Core.Rms_select.explored
    stats2.Core.Rms_select.explored;
  check bool "both partial" true
    (stats1.Core.Rms_select.status <> Engine.Guard.Exact
     && stats1.Core.Rms_select.status = stats2.Core.Rms_select.status)

let test_deadline_stops_pathological_search () =
  let tasks = pathological_tasks () in
  let exhausted_before = Engine.Telemetry.counter "guard.exhausted" in
  let t0 = Unix.gettimeofday () in
  let got, stats =
    Core.Rms_select.run_instrumented
      ~guard:(Engine.Guard.create ~deadline_s:0.25 ())
      ~use_bound:false ~budget:1000 tasks
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check bool "stopped promptly (well under the unguarded runtime)" true
    (elapsed < 20.);
  (match stats.Core.Rms_select.status with
   | Engine.Guard.Partial (Engine.Guard.Deadline _) -> ()
   | s -> Alcotest.failf "expected deadline exhaustion, got %s"
            (Engine.Guard.string_of_status s));
  check bool "guard.exhausted counted" true
    (Engine.Telemetry.counter "guard.exhausted" > exhausted_before);
  match got with
  | None -> Alcotest.fail "no incumbent after 0.25s on a feasible instance"
  | Some inc ->
    check bool "incumbent schedulable" true
      (Check.Oracle.response_time_schedulable (pairs_of inc))

let test_guarded_pareto_front_is_achievable () =
  let entities =
    List.init 5 (fun _ ->
        [| { Pareto.Mo_select.delta = 1.; cost = 1 };
           { Pareto.Mo_select.delta = 2.; cost = 3 } |])
  in
  let base = 20. in
  (* the DP ticks (1 + cells) fuel per entity row; enough for two rows *)
  let cells = 5 * 3 in
  let guard = Engine.Guard.create ~fuel:(2 * (1 + cells)) () in
  let partial, status =
    Pareto.Mo_select.exact_front_guarded ~guard ~base entities
  in
  (match status with
   | Engine.Guard.Partial (Engine.Guard.Fuel _) -> ()
   | s -> Alcotest.failf "expected fuel exhaustion, got %s"
            (Engine.Guard.string_of_status s));
  check bool "partial front is nonempty" true (partial <> []);
  let exact = Pareto.Mo_select.exact_front ~base entities in
  (* every partial point is achievable, so some exact point dominates it *)
  List.iter
    (fun (p : Util.Pareto_front.point) ->
      check bool
        (Printf.sprintf "point (%d, %.1f) dominated by the exact front"
           p.cost p.value)
        true
        (List.exists
           (fun (q : Util.Pareto_front.point) ->
             q.cost <= p.cost && q.value <= p.value +. 1e-9)
           exact))
    partial

let test_guarded_enumeration_is_prefix () =
  match Kernels.find_opt "adpcm_enc" with
  | None -> Alcotest.fail "adpcm_enc kernel missing"
  | Some cfg ->
    let blocks = Ir.Cfg.blocks cfg in
    let big =
      List.fold_left
        (fun acc (b : Ir.Cfg.block) ->
          if Ir.Dfg.node_count b.Ir.Cfg.body > Ir.Dfg.node_count acc.Ir.Cfg.body
          then b
          else acc)
        (List.hd blocks) blocks
    in
    let constraints = Isa.Hw_model.default_constraints in
    let all = Ise.Enumerate.connected ~constraints big.Ir.Cfg.body in
    let some =
      Ise.Enumerate.connected
        ~guard:(Engine.Guard.create ~fuel:3 ())
        ~constraints big.Ir.Cfg.body
    in
    check bool "guarded enumeration finds fewer candidates" true
      (List.length some < List.length all);
    check bool "guarded candidates are a subset" true
      (List.for_all (fun c -> List.mem c all) some)

(* ------------------------------ fault ------------------------------ *)

let with_fault_spec spec_string f =
  (match Engine.Fault.parse spec_string with
   | Ok spec -> Engine.Fault.configure spec
   | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec_string msg);
  Fun.protect ~finally:Engine.Fault.disable f

let with_scratch_cache f =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "isecustom-test-resilience-%d" (Unix.getpid ()))
  in
  let saved_dir = Engine.Cache.dir () in
  let saved_enabled = Engine.Cache.enabled () in
  let saved_level = Engine.Log.level () in
  Engine.Log.set_level Engine.Log.Error;
  Fun.protect
    ~finally:(fun () ->
      Engine.Log.set_level saved_level;
      ignore (Engine.Cache.clear ());
      (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Engine.Cache.set_dir saved_dir;
      Engine.Cache.set_enabled saved_enabled)
    (fun () ->
      Engine.Cache.set_dir tmp;
      Engine.Cache.set_enabled true;
      f ())

let test_injected_truncation_reads_as_corrupt () =
  with_scratch_cache @@ fun () ->
  let value = [ "torn"; "write" ] in
  with_fault_spec "seed=5,cache.truncate=1x1" (fun () ->
      Engine.Cache.store ~namespace:"resilience" ~key:"t" value;
      check int "truncation fired" 1 (Engine.Fault.fired "cache.truncate");
      let corrupt_before = Engine.Telemetry.counter "cache.corrupt" in
      check bool "torn entry reads as a miss" true
        (Engine.Cache.find ~namespace:"resilience" ~key:"t" () = None);
      check bool "torn entry counted as corruption" true
        (Engine.Telemetry.counter "cache.corrupt" > corrupt_before);
      (* recompute-and-store repairs the entry (the fire cap is spent) *)
      Engine.Cache.store ~namespace:"resilience" ~key:"t" value;
      check bool "repaired entry reads back" true
        (Engine.Cache.find ~namespace:"resilience" ~key:"t" () = Some value))

let test_injected_write_failure_degrades () =
  with_scratch_cache @@ fun () ->
  with_fault_spec "seed=6,cache.write=1x1" (fun () ->
      let failed_before = Engine.Telemetry.counter "cache.write_failed" in
      (* must not raise: the cache degrades to in-memory-only *)
      Engine.Cache.store ~namespace:"resilience" ~key:"w" [ 1; 2 ];
      check bool "write failure counted" true
        (Engine.Telemetry.counter "cache.write_failed" > failed_before);
      check bool "no tmp file leaked" true
        (Sys.readdir (Engine.Cache.dir ())
         |> Array.for_all (fun f ->
                not (String.length f > 4 && String.sub f 0 4 = ".tmp")
                && not
                     (Filename.check_suffix f
                        (Printf.sprintf ".tmp.%d" (Unix.getpid ()))))))

let test_map_result_retries_transient_crash () =
  with_fault_spec "seed=9,parallel.worker=1x1" (fun () ->
      let recovered_before = Engine.Telemetry.counter "parallel.recovered" in
      let outcomes =
        Engine.Parallel.Pool.with_pool ~jobs:1 @@ fun pool ->
        Engine.Parallel.Pool.map_result pool ~attempts:2
          (fun x -> x * 10)
          [ 1; 2; 3 ]
      in
      check bool "all items recovered" true
        (outcomes = [ Ok 10; Ok 20; Ok 30 ]);
      check int "crash fired once" 1 (Engine.Fault.fired "parallel.worker");
      check bool "recovery counted" true
        (Engine.Telemetry.counter "parallel.recovered" > recovered_before))

let test_map_result_isolates_permanent_failure () =
  let outcomes =
    Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
    Engine.Parallel.Pool.map_result pool ~attempts:2
      (fun x -> if x = 2 then failwith "permanently broken" else x * 10)
      [ 1; 2; 3 ]
  in
  match outcomes with
  | [ Ok 10; Error e; Ok 30 ] ->
    check int "both attempts spent" 2 e.Engine.Parallel.attempts;
    check bool "message preserved" true
      (String.length e.Engine.Parallel.message > 0)
  | _ -> Alcotest.fail "permanent failure not isolated to its item"

let test_fault_selftest_passes () =
  match Check.Runner.fault_selftest () with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "fault selftest: %s" msg

(* ---------------------------- coherence ---------------------------- *)

let test_clear_bumps_generation () =
  with_scratch_cache @@ fun () ->
  (* the scratch directory may carry a stamp from an earlier test in
     this binary — only monotonicity is contractual *)
  let g0 = Engine.Cache.generation () in
  Engine.Cache.store ~namespace:"resilience" ~key:"g" [ 1 ];
  ignore (Engine.Cache.clear () : int);
  let g1 = Engine.Cache.generation () in
  check bool "clear bumps the stamp" true (g1 > g0);
  let g2 = Engine.Cache.bump_generation () in
  check int "bump returns the stored stamp" g2 (Engine.Cache.generation ());
  check bool "stamp is monotone" true (g2 > g1)

let test_memo_revalidate_drops_on_bump () =
  with_scratch_cache @@ fun () ->
  let m = Engine.Memo.create ~shards:2 ~spill:true ~namespace:"coherence" () in
  Engine.Memo.store m ~key:"k" "v";
  check int "entry resident" 1 (Engine.Memo.size m);
  check bool "no bump, no drop" false (Engine.Memo.revalidate m);
  check int "still resident" 1 (Engine.Memo.size m);
  (* a sibling process invalidating the shared directory = a bump *)
  ignore (Engine.Cache.bump_generation () : int);
  check bool "bump detected" true (Engine.Memo.revalidate m);
  check int "resident tables dropped" 0 (Engine.Memo.size m);
  (* the spilled copy survives a bare bump; a lookup re-promotes it *)
  check bool "spilled entry re-promoted" true
    (Engine.Memo.find m ~key:"k" = Some "v");
  check bool "second probe is quiet" false (Engine.Memo.revalidate m);
  let no_spill =
    Engine.Memo.create ~shards:2 ~spill:false ~namespace:"coherence" ()
  in
  ignore (Engine.Cache.bump_generation () : int);
  check bool "no-spill memo has nothing shared to go stale" false
    (Engine.Memo.revalidate no_spill)

let test_sweep_reaps_dead_writers_only () =
  with_scratch_cache @@ fun () ->
  Engine.Cache.store ~namespace:"resilience" ~key:"s" [ 1 ];
  let dir = Engine.Cache.dir () in
  (* a writer pid with no live process behind it (forking one and
     reaping it would be cleaner, but fork is off-limits once domains
     exist) *)
  let rec find_dead p =
    if p <= 1 then Alcotest.fail "no free pid found below 99999"
    else
      match Unix.kill p 0 with
      | () -> find_dead (p - 1)
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> p
      | exception Unix.Unix_error _ -> find_dead (p - 1)
  in
  let dead_pid = find_dead 99999 in
  let touch f =
    let oc = open_out f in
    output_string oc "torn";
    close_out oc
  in
  let dead = Filename.concat dir (Printf.sprintf "orphan.tmp.%d" dead_pid) in
  let live =
    Filename.concat dir (Printf.sprintf "scratch.tmp.%d" (Unix.getpid ()))
  in
  touch dead;
  touch live;
  let old = Unix.gettimeofday () -. 3600. in
  Unix.utimes dead old old;
  Unix.utimes live old old;
  check int "one orphan swept" 1 (Engine.Cache.sweep_stale_tmp ());
  check bool "dead writer's tmp gone" false (Sys.file_exists dead);
  check bool "live writer's tmp preserved" true (Sys.file_exists live);
  (* a fresh orphan survives the default age gate until it is old *)
  touch dead;
  check int "young orphan not swept" 0 (Engine.Cache.sweep_stale_tmp ());
  check int "age zero sweeps it" 1
    (Engine.Cache.sweep_stale_tmp ~older_than_s:0. ());
  Sys.remove live

(* ------------------------------ sweep ------------------------------ *)

let test_sweep_isolates_failing_experiment () =
  let ok id =
    { Experiments.Registry.id;
      title = id;
      run =
        (fun () ->
          Experiments.Report.collect (fun t ->
              Experiments.Report.row t [ id ])) }
  in
  let boom =
    { Experiments.Registry.id = "boom";
      title = "always fails";
      run = (fun () -> failwith "experiment crashed") }
  in
  let saved_level = Engine.Log.level () in
  Engine.Log.set_level Engine.Log.Error;
  Fun.protect ~finally:(fun () -> Engine.Log.set_level saved_level)
  @@ fun () ->
  match Experiments.Registry.run_sweep [ ok "a"; boom; ok "b" ] with
  | [ (_, Ok ra); (_, Error msg); (_, Ok rb) ] ->
    check bool "first experiment ran" true
      (ra.Experiments.Report.rows = [ [ "a" ] ]);
    check bool "last experiment still ran" true
      (rb.Experiments.Report.rows = [ [ "b" ] ]);
    check bool "failure message preserved" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "sweep did not isolate the failing experiment"

let () =
  Alcotest.run "resilience"
    [ ( "guard",
        [ Alcotest.test_case "tight fuel: sound partial incumbent" `Quick
            test_tight_fuel_partial_incumbent;
          Alcotest.test_case "fuel partials are reproducible" `Quick
            test_fuel_partial_is_reproducible;
          Alcotest.test_case "deadline stops a pathological search" `Quick
            test_deadline_stops_pathological_search;
          Alcotest.test_case "guarded Pareto front is achievable" `Quick
            test_guarded_pareto_front_is_achievable;
          Alcotest.test_case "guarded enumeration is a prefix" `Quick
            test_guarded_enumeration_is_prefix ] );
      ( "fault",
        [ Alcotest.test_case "injected truncation reads as corrupt" `Quick
            test_injected_truncation_reads_as_corrupt;
          Alcotest.test_case "injected write failure degrades" `Quick
            test_injected_write_failure_degrades;
          Alcotest.test_case "map_result retries a transient crash" `Quick
            test_map_result_retries_transient_crash;
          Alcotest.test_case "map_result isolates a permanent failure" `Quick
            test_map_result_isolates_permanent_failure;
          Alcotest.test_case "fault selftest passes" `Quick
            test_fault_selftest_passes ] );
      ( "coherence",
        [ Alcotest.test_case "clear bumps the generation stamp" `Quick
            test_clear_bumps_generation;
          Alcotest.test_case "memo revalidates on a sibling bump" `Quick
            test_memo_revalidate_drops_on_bump;
          Alcotest.test_case "sweep reaps dead writers only" `Quick
            test_sweep_reaps_dead_writers_only ] );
      ( "sweep",
        [ Alcotest.test_case "one failing experiment does not abort" `Quick
            test_sweep_isolates_failing_experiment ] ) ]
