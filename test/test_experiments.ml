(* Integration tests: the cheap experiment drivers run end-to-end and
   produce the landmarks the paper's tables contain.  The expensive
   sweeps (f3.3, t6.1, ...) are exercised by `bench/main.exe`, not
   here. *)

let check = Alcotest.check
let bool = Alcotest.bool

let render (e : Experiments.Registry.experiment) =
  let buffer = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.Report.render fmt (e.run ());
  Format.pp_print_flush fmt ();
  Buffer.contents buffer

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let run_and_expect id needles () =
  match Experiments.Registry.find id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some e ->
    let out = render e in
    List.iter
      (fun needle ->
        check bool
          (Printf.sprintf "%s output contains %S" id needle)
          true (contains out needle))
      needles

let test_registry_ids_unique () =
  let ids = Experiments.Registry.ids () in
  check bool "unique ids" true
    (List.length ids = List.length (List.sort_uniq compare ids));
  check bool "all found" true
    (List.for_all (fun id -> Experiments.Registry.find id <> None) ids)

let test_curve_cache_consistent () =
  (* the memo must return the same curve object semantics every time *)
  let a = Experiments.Curves.curve "lms" in
  let b = Experiments.Curves.curve "lms" in
  check bool "same base cycles" true
    (Isa.Config.base_cycles a = Isa.Config.base_cycles b);
  check bool "same points" true (Isa.Config.points a = Isa.Config.points b)

let test_tasks_of_utilization () =
  let tasks = Experiments.Curves.tasks_of ~u:1.05 [ "lms"; "ndes" ] in
  check (Alcotest.float 0.02) "target utilization" 1.05
    (Rt.Task.set_utilization tasks)

let () =
  Alcotest.run "experiments"
    [ ( "registry",
        [ Alcotest.test_case "ids unique and findable" `Quick test_registry_ids_unique ] );
      ( "infrastructure",
        [ Alcotest.test_case "curve cache" `Quick test_curve_cache_consistent;
          Alcotest.test_case "task builder" `Quick test_tasks_of_utilization ] );
      ( "drivers",
        [ Alcotest.test_case "t3.1 lists the six task sets" `Quick
            (run_and_expect "t3.1" [ "crc32, sha, jpeg_dec, blowfish"; "crc32, sha, blowfish, susan" ]);
          Alcotest.test_case "f3.2 reproduces the motivating example" `Quick
            (run_and_expect "f3.2"
               [ "NOT schedulable"; "optimal (Algorithm 1)"; "1.0000" ]);
          Alcotest.test_case "f6.4 reproduces solutions B and C" `Quick
            (run_and_expect "f6.4" [ "net 933K"; "net 1173K" ]);
          Alcotest.test_case "t5.2 lists the chapter-5 sets" `Quick
            (run_and_expect "t5.2" [ "3des, rijndael, sha, g721decode" ]);
          Alcotest.test_case "t4.1 notes the ispell substitution" `Quick
            (run_and_expect "t4.1" [ "md5" ]) ] ) ]
