# Tier-1 verification is `make check`: build, format check (when
# ocamlformat is available — the sealed container does not ship it),
# and the full test suite.

.PHONY: all build test fmt check bench fuzz clean

all: build

build:
	dune build

test:
	dune runtest

# `dune build @fmt` requires ocamlformat; skip with a notice when the
# toolchain lacks it so `make check` stays runnable everywhere.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

check: build fmt test

# The engine benchmark validates its own output: it exits non-zero if
# BENCH_engine.json is missing any expected key.
bench:
	dune exec bench/main.exe -- engine

# Property-based differential fuzzing (lib/check): every solver vs its
# brute-force oracle on SEED-replayable random instances, BUDGET cases
# per property.  Failures shrink to repro-*.json (git-ignored).
SEED ?= 42
BUDGET ?= 1000
fuzz:
	dune exec bin/isecustom.exe -- check --seed $(SEED) --budget $(BUDGET)

clean:
	dune clean
