# Tier-1 verification is `make check`: build, format check (when
# ocamlformat is available — the sealed container does not ship it),
# and the full test suite.

.PHONY: all build test fmt check bench batch-bench generator-bench golden-update fuzz isegen-fuzz faults parallel-stress metrics-smoke daemon-smoke chaos clean

all: build

build:
	dune build

test:
	dune runtest

# `dune build @fmt` requires ocamlformat; skip with a notice when the
# toolchain lacks it so `make check` stays runnable everywhere.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

check: build fmt test

# The engine benchmark validates its own output: it exits non-zero if
# BENCH_engine.json is missing any expected key.
bench:
	dune exec bench/main.exe -- engine

# Batch-service benchmark: 200-request stream with 4x duplication,
# batched answers diffed against the sequential reference; exits
# non-zero on any byte difference or a cold hit-rate below 50%.
batch-bench: build
	dune exec bench/main.exe -- batch

# Candidate-generator benchmark: on blocks that saturate the exhaustive
# enumerator's small budget, isegen must bank >= 1.2x the selected gain
# within 2x of the deep enumeration's wall-clock (generator_scaling in
# BENCH_engine.json).
generator-bench: build
	dune exec bench/main.exe -- generator

# Regenerate the golden corpus (test/golden/) after a *deliberate*
# output change: re-emit the request set, then record the sequential
# solver's responses as the new expected outputs.  Review the diff —
# test_golden exists to make silent drift loud.
golden-update: build
	dune exec test/golden_gen.exe > test/golden/cases.jsonl
	dune exec bin/isecustom.exe -- batch --no-cache --sequential \
	  --out test/golden/expected.jsonl test/golden/cases.jsonl

# Property-based differential fuzzing (lib/check): every solver vs its
# brute-force oracle on SEED-replayable random instances, BUDGET cases
# per property.  Failures shrink to repro-*.json (git-ignored).
SEED ?= 42
BUDGET ?= 1000
fuzz:
	dune exec bin/isecustom.exe -- check --seed $(SEED) --budget $(BUDGET)

# The ISEGEN differential suite alone: iterative-generator legality,
# the 90%-of-oracle floor on small DFGs, anytime guard cuts, the
# auto-dispatch switch and the hardware cost backends.
isegen-fuzz:
	dune exec bin/isecustom.exe -- check --suite isegen --seed $(SEED) \
	  --budget $(BUDGET)

# Fault-injection run (lib/engine/fault): first fire every injection
# point deterministically and assert each is survived, then run the
# whole differential suite with random faults raining on the cache,
# the worker pool and the resource guards — everything must still pass
# (properties that assert exactness skip themselves under injection).
FAULT_SPEC ?= seed=42,cache.write=0.2,cache.read=0.2,cache.truncate=0.2,parallel.worker=0.2,guard.exhaust=0.01
faults: build
	dune exec bin/isecustom.exe -- check faults
	dune exec bin/isecustom.exe -- check --seed $(SEED) --budget 200 \
	  --fault-spec "$(FAULT_SPEC)"

# Pool stress: the work-stealing pool's own test binary, the pooled
# map_result == sequential-fold property at 4 jobs under random fault
# specs, and the full fault-injection run.
parallel-stress: build
	dune exec test/test_pool.exe
	dune exec bin/isecustom.exe -- check --suite parallel --seed $(SEED) \
	  --budget 200
	$(MAKE) faults

# Observability smoke: scrape /metrics + /healthz from a live
# `metrics serve` over a pooled workload, then assert a faulted run
# leaves a crash flight recording (scripts/metrics_smoke.sh).
metrics-smoke: build
	sh scripts/metrics_smoke.sh

# Daemon smoke: run the golden corpus through a live `isecustom serve`
# via `batch --connect` (cold and memo-warm), require byte-identity
# with the sequential reference, scrape the daemon metric families,
# then SIGTERM and require a graceful drain (scripts/daemon_smoke.sh).
daemon-smoke: build
	sh scripts/daemon_smoke.sh

# Chaos harness: a live `isecustom serve` under seeded fault injection
# vs hostile clients (garbage, oversized, slow-loris, aborts), a
# SIGKILL client storm and a SIGKILLed sibling cache writer — surviving
# responses must stay byte-identical to the golden corpus, with no
# wedged threads, no fd leaks and a clean drain afterwards
# (scripts/chaos_smoke.sh; seed via CHAOS_SEED, bounded ~30s).
CHAOS_SEED ?= 42
chaos: build
	CHAOS_SEED=$(CHAOS_SEED) sh scripts/chaos_smoke.sh

clean:
	dune clean
